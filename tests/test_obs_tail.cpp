// Tail-latency attribution suite: the sliding-window histogram driven by a
// manual clock (exact, deterministic aggregates), the striped exemplar
// slow-log, the Perfetto/collapsed trace exporters (golden bytes plus a
// mini JSON parser proving the output is well-formed trace_event JSON that
// round-trips the span count), and the per-level answer attribution whose
// counter family must sum exactly to queries_total regardless of worker
// count. Labeled `obs`, so every row of the matrix — TSan and the
// PATHSEP_OBS_DISABLED build included — runs it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "hierarchy/decomposition_tree.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/slowlog.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "oracle/path_oracle.hpp"
#include "separator/finders.hpp"
#include "service/query_engine.hpp"
#include "util/rng.hpp"

namespace pathsep::obs {
namespace {

using graph::Vertex;
using graph::Weight;

// ------------------------------------------------------------ mini JSON

/// Strict recursive-descent JSON validator — no library, no allocation of a
/// DOM. Accepts exactly the RFC 8259 grammar (numbers checked loosely for a
/// digit, which is all the exporters emit).
class MiniJson {
 public:
  explicit MiniJson(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!peek('"')) return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ < text_.size()) ++pos_;
      } else if (c == '"') {
        return true;
      }
    }
    return false;  // ran off the end inside a string
  }

  bool number() {
    bool digit = false;
    if (peek('-')) ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digit = true;
      } else if (c != '.' && c != 'e' && c != 'E' && c != '+' && c != '-') {
        break;
      }
      ++pos_;
    }
    return digit;
  }

  bool object() {
    ++pos_;  // consume '{'
    skip_ws();
    if (peek('}')) return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!peek(':')) return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(',')) {
        ++pos_;
        continue;
      }
      if (peek('}')) return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // consume '['
    skip_ws();
    if (peek(']')) return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(',')) {
        ++pos_;
        continue;
      }
      if (peek(']')) return ++pos_, true;
      return false;
    }
  }

  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(std::string_view text, std::string_view needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string_view::npos;
       pos = text.find(needle, pos + needle.size()))
    ++count;
  return count;
}

// --------------------------------------------------------- WindowedHistogram

TEST(ObsWindow, ManualClockAggregatesOneWindowExactly) {
  WindowedHistogram window(1000, 4);  // 1µs windows, 4-slot ring
  window.record(100, 100);
  window.record(200, 600);
  window.record(300, 999);  // all three land in window [0, 1000)

  const auto full = window.view(999);
  EXPECT_EQ(full.interval_ns, 1000u);
  EXPECT_EQ(full.windows, 4u);  // lookback 0 = whole ring
  EXPECT_EQ(full.count, 3u);
  EXPECT_EQ(full.sum_nanos, 600u);
  EXPECT_DOUBLE_EQ(full.qps, 3.0 / (4.0 * 1000.0 / 1e9));
  EXPECT_EQ(window.dropped(), 0u);

  std::uint64_t bucketed = 0;
  for (const std::uint64_t b : full.buckets) bucketed += b;
  EXPECT_EQ(bucketed, 3u);
}

TEST(ObsWindow, LookbackSelectsOnlyRecentWindows) {
  WindowedHistogram window(1000, 4);
  window.record(100, 500);   // window 1
  window.record(400, 1500);  // window 2

  const auto both = window.view(1500);
  EXPECT_EQ(both.count, 2u);
  EXPECT_EQ(both.sum_nanos, 500u);

  const auto latest = window.view(1500, 1);
  EXPECT_EQ(latest.windows, 1u);
  EXPECT_EQ(latest.count, 1u);
  EXPECT_EQ(latest.sum_nanos, 400u);
  EXPECT_DOUBLE_EQ(latest.qps, 1.0 / (1000.0 / 1e9));
}

TEST(ObsWindow, ExpiredWindowsLeaveTheView) {
  WindowedHistogram window(1000, 4);
  window.record(100, 500);   // window 1
  window.record(400, 1500);  // window 2
  // 4 windows later, window 1 is exactly one ring-lap old: out of range.
  const auto late = window.view(4999);
  EXPECT_EQ(late.count, 1u);
  EXPECT_EQ(late.sum_nanos, 400u);
  // One more interval and window 2 ages out as well.
  EXPECT_EQ(window.view(5999).count, 0u);
}

TEST(ObsWindow, RecyclingASlotDiscardsTheStaleWindow) {
  WindowedHistogram window(1000, 4);
  window.record(400, 1500);  // window 2, slot 2
  window.record(500, 5500);  // window 6 maps to the same slot — recycled
  const auto now = window.view(5500);
  EXPECT_EQ(now.count, 1u);
  EXPECT_EQ(now.sum_nanos, 500u);
  EXPECT_EQ(window.dropped(), 0u);
}

TEST(ObsWindow, RejectsDegenerateGeometry) {
  EXPECT_THROW(WindowedHistogram(0, 8), std::invalid_argument);
  EXPECT_THROW(WindowedHistogram(1000, 0), std::invalid_argument);
}

TEST(ObsWindow, ConcurrentRecordingWithinOneWindowIsExact) {
  WindowedHistogram window(1'000'000'000, 4);
  // Pre-touch the slot so the worker threads never race the initial claim;
  // steady-state recording must then be exact (drop-free).
  window.record(1, 10);
  constexpr int kThreads = 4, kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&window, t] {
      for (int i = 0; i < kPerThread; ++i)
        window.record(static_cast<std::uint64_t>(t + 1), 10);
    });
  for (std::thread& w : workers) w.join();

  const auto merged = window.view(10);
  EXPECT_EQ(merged.count, 1u + kThreads * kPerThread);
  // sum = 1 + sum_t (t+1) * kPerThread
  EXPECT_EQ(merged.sum_nanos, 1u + (1u + 2u + 3u + 4u) * kPerThread);
  EXPECT_EQ(window.dropped(), 0u);
}

TEST(ObsWindow, PercentilesMatchCumulativeHistogramOnSameStream) {
  WindowedHistogram window(1'000'000, 2);
  LatencyHistogram cumulative;
  util::Rng rng(17);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t nanos = 50 + rng.next_below(200000);
    window.record(nanos, 42);  // single window
    cumulative.record(nanos);
  }
  const auto view = window.view(42, 1);
  EXPECT_EQ(view.count, 3000u);
  EXPECT_DOUBLE_EQ(view.p50_nanos, cumulative.percentile_nanos(0.50));
  EXPECT_DOUBLE_EQ(view.p95_nanos, cumulative.percentile_nanos(0.95));
  EXPECT_DOUBLE_EQ(view.p99_nanos, cumulative.percentile_nanos(0.99));
}

// ------------------------------------------------------------------- SlowLog

SlowQuery slow(std::uint64_t latency_ns, std::uint32_t u = 0,
               std::uint64_t when_ns = 0) {
  SlowQuery q;
  q.u = u;
  q.v = u + 1;
  q.latency_ns = latency_ns;
  q.when_ns = when_ns;
  return q;
}

TEST(ObsSlowLog, SingleStripeKeepsTheExactTopK) {
  SlowLog log(4, 1);
  for (const std::uint64_t lat : {50u, 10u, 90u, 30u, 70u, 20u, 100u, 40u})
    log.record(slow(lat));
  const std::vector<SlowQuery> top = log.snapshot();
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].latency_ns, 100u);
  EXPECT_EQ(top[1].latency_ns, 90u);
  EXPECT_EQ(top[2].latency_ns, 70u);
  EXPECT_EQ(top[3].latency_ns, 50u);
  // The floor is the smallest retained latency: nothing faster can enter.
  EXPECT_EQ(log.admission_floor(), 50u);
}

TEST(ObsSlowLog, AdmitsEverythingWhileWarmingUp) {
  SlowLog log(4, 1);
  EXPECT_EQ(log.admission_floor(), 0u);  // empty log takes any latency
  log.record(slow(500));
  log.record(slow(300));
  EXPECT_EQ(log.admission_floor(), 0u);  // still has room
  log.record(slow(100));
  log.record(slow(400));
  EXPECT_EQ(log.admission_floor(), 100u);  // full: floor = retained minimum
  EXPECT_EQ(log.admitted(), 4u);
}

TEST(ObsSlowLog, ZeroCapacityDisablesTheLog) {
  SlowLog off(0, 8);
  // An infinite floor means the serving layer's `elapsed >= floor` check
  // never offers an entry; record() is a no-op even if called anyway.
  EXPECT_EQ(off.admission_floor(), UINT64_MAX);
  off.record(slow(1'000'000));
  EXPECT_TRUE(off.snapshot().empty());
  EXPECT_EQ(off.admitted(), 0u);
}

TEST(ObsSlowLog, TiesDoNotDisplaceRetainedEntries) {
  SlowLog log(1, 1);
  log.record(slow(77, /*u=*/1));
  log.record(slow(77, /*u=*/2));  // equal latency loses to the incumbent
  const std::vector<SlowQuery> kept = log.snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].u, 1u);
}

TEST(ObsSlowLog, StripedSnapshotIsBoundedSortedAndKeepsTheSlowest) {
  SlowLog log(8, 4);
  util::Rng rng(23);
  std::uint64_t slowest = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t lat = 1 + rng.next_below(100000);
    slowest = std::max(slowest, lat);
    log.record(slow(lat, static_cast<std::uint32_t>(i),
                    static_cast<std::uint64_t>(i)));
  }
  const std::vector<SlowQuery> top = log.snapshot();
  ASSERT_LE(top.size(), 8u);
  ASSERT_FALSE(top.empty());
  // Striping makes the bottom of the log approximate, but the global
  // maximum can never be evicted, and the merge is sorted slowest-first.
  EXPECT_EQ(top[0].latency_ns, slowest);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].latency_ns, top[i].latency_ns);
}

TEST(ObsSlowLog, ConcurrentRecordingKeepsInvariants) {
  SlowLog log(16, 4);
  constexpr int kThreads = 4, kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&log, t] {
      util::Rng rng(static_cast<std::uint64_t>(100 + t));
      for (int i = 0; i < kPerThread; ++i)
        log.record(slow(1 + rng.next_below(1'000'000),
                        static_cast<std::uint32_t>(t)));
    });
  for (std::thread& w : workers) w.join();

  const std::vector<SlowQuery> top = log.snapshot();
  ASSERT_LE(top.size(), 16u);
  ASSERT_FALSE(top.empty());
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].latency_ns, top[i].latency_ns);
  // Every retained entry beat the final floor (floors only rise once full).
  for (const SlowQuery& e : top)
    EXPECT_GE(e.latency_ns, log.admission_floor());
  EXPECT_LE(log.admitted(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------ trace export

TEST(ObsTailExport, PerfettoGoldenBytes) {
  std::vector<SpanRecord> records;
  records.push_back({"root", 1, 0, 1000, 5000, 0});
  records.push_back({"child", 2, 1, 1500, 2500, 3});
  const std::string golden =
      "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n"
      "  {\"name\": \"root\", \"cat\": \"pathsep\", \"ph\": \"X\", "
      "\"ts\": 1.000, \"dur\": 4.000, \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"id\": 1, \"parent\": 0}},\n"
      "  {\"name\": \"child\", \"cat\": \"pathsep\", \"ph\": \"X\", "
      "\"ts\": 1.500, \"dur\": 1.000, \"pid\": 1, \"tid\": 3, "
      "\"args\": {\"id\": 2, \"parent\": 1}}\n"
      "]}\n";
  EXPECT_EQ(trace_to_perfetto(records), golden);
}

TEST(ObsTailExport, PerfettoEmptyTraceIsStillValidJson) {
  const std::string empty = trace_to_perfetto({});
  EXPECT_EQ(empty, "{\"displayTimeUnit\": \"ns\", \"traceEvents\": []}\n");
  EXPECT_TRUE(MiniJson(empty).valid());
}

TEST(ObsTailExport, PerfettoRoundTripsLiveSpanCount) {
  drain_spans();  // discard spans from earlier tests
  set_trace_enabled(true);
  {
    ScopedSpan outer("outer");
    for (int i = 0; i < 5; ++i) ScopedSpan inner("inner");
    commit_span("tail_exemplar", 10, 90);  // the slow-log's sampling path
  }
  set_trace_enabled(false);
  const std::vector<SpanRecord> spans = drain_spans();
  ASSERT_EQ(spans.size(), 7u);

  const std::string json = trace_to_perfetto(spans);
  EXPECT_TRUE(MiniJson(json).valid()) << json;
  // One complete-duration event per recorded span, nothing dropped or
  // duplicated: the trace round-trips the span count exactly.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), spans.size());
  EXPECT_EQ(count_occurrences(json, "\"cat\": \"pathsep\""), spans.size());
  EXPECT_EQ(count_occurrences(json, "\"name\": \"inner\""), 5u);
  EXPECT_EQ(count_occurrences(json, "\"name\": \"tail_exemplar\""), 1u);
}

TEST(ObsTailExport, CollapsedStacksGolden) {
  std::vector<SpanRecord> records;
  records.push_back({"root", 1, 0, 0, 100, 0});
  records.push_back({"child", 2, 1, 10, 40, 0});
  EXPECT_EQ(trace_to_collapsed(stitch_spans(std::move(records))),
            "root 70\nroot;child 30\n");
}

TEST(ObsTailExport, CollapsedSelfTimeClampsWhenChildrenOverlap) {
  // Parallel children stitched under one parent can sum past its duration;
  // self time must clamp to zero, not wrap around.
  std::vector<SpanRecord> records;
  records.push_back({"root", 1, 0, 0, 100, 0});
  records.push_back({"a", 2, 1, 0, 60, 1});
  records.push_back({"b", 3, 1, 20, 100, 2});
  EXPECT_EQ(trace_to_collapsed(stitch_spans(std::move(records))),
            "root 0\nroot;a 60\nroot;b 80\n");
}

TEST(ObsTailExport, WindowJsonIsValidAndCarriesTheAggregates) {
  WindowedHistogram window(1000, 4);
  window.record(100, 100);
  window.record(200, 600);
  window.record(300, 999);
  const std::string json = window_to_json(window.view(999));
  EXPECT_TRUE(MiniJson(json).valid()) << json;
  EXPECT_NE(json.find("\"interval_ns\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"windows\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"sum_ns\": 600"), std::string::npos);
  EXPECT_NE(json.find("\"qps\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\": "), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": ["), std::string::npos);
}

TEST(ObsTailExport, SlowlogJsonIsValidAndNamesEveryOutcome) {
  std::vector<SlowQuery> entries;
  SlowQuery a = slow(4200, 7, 99);
  a.entries_scanned = 12;
  a.win_node = 3;
  a.win_level = 2;
  a.span_id = 41;
  entries.push_back(a);
  SlowQuery b = slow(100, 5, 1);
  b.outcome = SlowQuery::Outcome::kSelf;
  entries.push_back(b);
  SlowQuery c = slow(200, 6, 2);
  c.outcome = SlowQuery::Outcome::kCached;
  entries.push_back(c);
  SlowQuery d = slow(300, 8, 3);
  d.outcome = SlowQuery::Outcome::kUnreachable;
  entries.push_back(d);

  const std::string json = slowlog_to_json(entries);
  EXPECT_TRUE(MiniJson(json).valid()) << json;
  EXPECT_NE(json.find("\"u\": 7, \"v\": 8, \"latency_us\": 4.2"),
            std::string::npos);
  EXPECT_NE(json.find("\"entries_scanned\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"win_node\": 3, \"win_level\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("\"span_id\": 41"), std::string::npos);
  for (const char* outcome : {"oracle", "self", "cached", "unreachable"})
    EXPECT_NE(json.find("\"outcome\": \"" + std::string(outcome) + "\""),
              std::string::npos);

  const std::string empty = slowlog_to_json({});
  EXPECT_EQ(empty, "[]");
  EXPECT_TRUE(MiniJson(empty).valid());
}

}  // namespace
}  // namespace pathsep::obs

// ------------------------------------------------- per-level attribution

namespace pathsep::service {
namespace {

using graph::Vertex;
using graph::Weight;

oracle::PathOracle grid_oracle(std::size_t side = 12, double eps = 0.3) {
  graph::GridGraph gg = graph::grid(side, side);
  const hierarchy::DecompositionTree tree(
      gg.graph, separator::GridLineSeparator(side, side));
  return oracle::PathOracle(tree, eps);
}

TEST(ObsAttribution, TreeOracleLevelsMatchDecompositionDepths) {
  graph::GridGraph gg = graph::grid(12, 12);
  const hierarchy::DecompositionTree tree(
      gg.graph, separator::GridLineSeparator(12, 12));
  const oracle::PathOracle built(tree, 0.3);

  EXPECT_EQ(built.node_level(0), 0);  // node 0 is the root
  EXPECT_EQ(built.num_levels(), tree.height());
  EXPECT_EQ(built.node_level(-1), -1);
  EXPECT_EQ(built.node_level(1 << 28), -1);  // out of range, not a crash
  for (const oracle::DistanceLabel& label : built.labels())
    for (const oracle::LabelPart& part : label.parts) {
      const std::int32_t level = built.node_level(part.node);
      ASSERT_GE(level, 0);
      ASSERT_LT(static_cast<std::size_t>(level), built.num_levels());
    }
}

TEST(ObsAttribution, SnapshotLoadedOracleDerivesTheSameLevels) {
  const oracle::PathOracle built = grid_oracle();
  // The snapshot path has no DecompositionTree: levels are reconstructed
  // from label chain order alone and must agree with the tree's depths.
  std::vector<oracle::DistanceLabel> labels = built.labels();
  const oracle::PathOracle loaded(std::move(labels), built.epsilon());
  EXPECT_EQ(loaded.num_levels(), built.num_levels());
  for (const oracle::DistanceLabel& label : built.labels())
    for (const oracle::LabelPart& part : label.parts)
      EXPECT_EQ(loaded.node_level(part.node), built.node_level(part.node))
          << "node " << part.node;
}

TEST(ObsAttribution, QueryStatsMatchesQueryAndNamesTheWinner) {
  const oracle::PathOracle built = grid_oracle();
  const auto n = static_cast<Vertex>(built.num_vertices());
  for (Vertex u = 0; u < n; u += 7)
    for (Vertex v = 1; v < n; v += 11) {
      oracle::QueryStats stats;
      const Weight with_stats = built.query_stats(u, v, stats);
      EXPECT_EQ(with_stats, built.query(u, v));  // attribution is free
      if (u == v) continue;
      EXPECT_GT(stats.entries_scanned, 0u);
      ASSERT_GE(stats.win_node, 0);  // a grid is connected
      EXPECT_EQ(stats.win_level, built.node_level(stats.win_node));
    }
}

// ----------------------------------------- answers_total counter family

std::map<std::string, std::uint64_t> counter_family(QueryEngine& engine,
                                                    const std::string& name) {
  std::map<std::string, std::uint64_t> family;
  for (const obs::MetricSample& sample : engine.metrics().snapshot()) {
    if (sample.kind != obs::MetricKind::kCounter || sample.name != name)
      continue;
    std::string key;
    for (const auto& [label, value] : sample.labels)
      key += label + "=" + value + ";";
    family[key] = sample.counter_value;
  }
  return family;
}

std::uint64_t family_sum(const std::map<std::string, std::uint64_t>& family) {
  std::uint64_t sum = 0;
  for (const auto& [key, value] : family) sum += value;
  return sum;
}

std::vector<Query> mixed_workload(Vertex n, std::size_t count) {
  util::Rng rng(29);
  std::vector<Query> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    // Every 16th query is a self pair, exercising the "self" counter.
    const Vertex v =
        i % 16 == 0 ? u : static_cast<Vertex>(rng.next_below(n));
    batch.push_back({u, v});
  }
  return batch;
}

TEST(ObsAttribution, AnswerCountersAreExactAndThreadCountInvariant) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  const std::vector<Query> batch =
      mixed_workload(static_cast<Vertex>(snapshot->num_vertices()), 2000);

  std::map<std::string, std::uint64_t> baseline;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    QueryEngineOptions opts;
    opts.threads = threads;
    opts.cache_capacity = 0;  // attribution must not depend on cache state
    QueryEngine engine(snapshot, opts);
    engine.query_batch(batch);

    const auto answers = counter_family(engine, "answers_total");
    const auto queries = counter_family(engine, "queries_total");
    ASSERT_FALSE(answers.empty());
    // Exactly one answers_total increment per query, so the family sums to
    // queries_total — the acceptance invariant — at every worker count.
    EXPECT_EQ(family_sum(answers), batch.size());
    EXPECT_EQ(family_sum(queries), batch.size());
    if (baseline.empty())
      baseline = answers;
    else
      EXPECT_EQ(answers, baseline) << threads << " threads diverged";
  }
}

TEST(ObsAttribution, CachedAnswersKeepTheSumInvariant) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  const std::vector<Query> batch =
      mixed_workload(static_cast<Vertex>(snapshot->num_vertices()), 1000);
  QueryEngineOptions opts;
  opts.threads = 2;
  QueryEngine engine(snapshot, opts);
  engine.query_batch(batch);
  engine.query_batch(batch);  // second pass answers mostly from cache

  const auto answers = counter_family(engine, "answers_total");
  EXPECT_EQ(family_sum(answers), 2 * batch.size());
  std::uint64_t cached = 0;
  for (const auto& [key, value] : answers)
    if (key.find("level=cached;") != std::string::npos) cached = value;
  EXPECT_GT(cached, 0u);
}

TEST(ObsAttribution, EngineWindowAndSlowLogSeeTheWorkload) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  QueryEngineOptions opts;
  opts.threads = 2;
  opts.cache_capacity = 0;
  opts.slowlog_capacity = 8;
  QueryEngine engine(snapshot, opts);
  const std::vector<Query> batch =
      mixed_workload(static_cast<Vertex>(snapshot->num_vertices()), 500);
  engine.query_batch(batch);

  // Real clock: the samples all land within the (1s) window lookback.
  const auto view = engine.window().view(obs::window_now_ns());
  EXPECT_EQ(view.count, batch.size());
  const std::vector<obs::SlowQuery> top = engine.slowlog().snapshot();
  ASSERT_FALSE(top.empty());
  ASSERT_LE(top.size(), 8u);
  for (const obs::SlowQuery& e : top) {
    EXPECT_LT(e.u, snapshot->num_vertices());
    EXPECT_GT(e.latency_ns, 0u);
  }
}

}  // namespace
}  // namespace pathsep::service
