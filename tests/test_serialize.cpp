#include "oracle/serialize.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "oracle/path_oracle.hpp"
#include "separator/finders.hpp"

namespace pathsep::oracle {
namespace {

TEST(Varint, RoundTripsRepresentativeValues) {
  for (std::uint64_t value :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xffffffffull, 0xffffffffffffffffull}) {
    std::vector<std::uint8_t> buf;
    append_varint(buf, value);
    std::size_t offset = 0;
    EXPECT_EQ(read_varint(buf, offset), value);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(Varint, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> buf;
  append_varint(buf, 42);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Varint, TruncatedInputThrows) {
  std::vector<std::uint8_t> buf;
  append_varint(buf, 1u << 20);
  buf.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW(read_varint(buf, offset), std::runtime_error);
}

DistanceLabel sample_label() {
  DistanceLabel label;
  label.vertex = 17;
  LabelPart part;
  part.node = 3;
  part.path = 1;
  part.connections.push_back(Connection{5, 9, 1.25, 0.5});
  part.connections.push_back(Connection{7, graph::kInvalidVertex, 0.0, 2.5});
  label.parts.push_back(part);
  LabelPart part2;
  part2.node = 12;
  part2.path = 0;
  part2.connections.push_back(Connection{0, 2, 3.75, 0.0});
  label.parts.push_back(part2);
  return label;
}

TEST(LabelSerialization, RoundTripPreservesEverything) {
  const DistanceLabel label = sample_label();
  const auto bytes = serialize_label(label);
  const DistanceLabel back = deserialize_label(bytes);
  ASSERT_EQ(back.vertex, label.vertex);
  ASSERT_EQ(back.parts.size(), label.parts.size());
  for (std::size_t p = 0; p < label.parts.size(); ++p) {
    EXPECT_EQ(back.parts[p].node, label.parts[p].node);
    EXPECT_EQ(back.parts[p].path, label.parts[p].path);
    ASSERT_EQ(back.parts[p].connections.size(),
              label.parts[p].connections.size());
    for (std::size_t c = 0; c < label.parts[p].connections.size(); ++c) {
      EXPECT_EQ(back.parts[p].connections[c].path_index,
                label.parts[p].connections[c].path_index);
      EXPECT_EQ(back.parts[p].connections[c].next_hop,
                label.parts[p].connections[c].next_hop);
      EXPECT_DOUBLE_EQ(back.parts[p].connections[c].dist,
                       label.parts[p].connections[c].dist);
      EXPECT_DOUBLE_EQ(back.parts[p].connections[c].prefix,
                       label.parts[p].connections[c].prefix);
    }
  }
}

TEST(LabelSerialization, BitsMatchesBufferSize) {
  const DistanceLabel label = sample_label();
  EXPECT_EQ(serialized_bits(label), serialize_label(label).size() * 8);
}

TEST(LabelSerialization, TrailingBytesRejected) {
  auto bytes = serialize_label(sample_label());
  bytes.push_back(0);
  EXPECT_THROW(deserialize_label(bytes), std::runtime_error);
}

TEST(LabelSerialization, TruncationRejected) {
  auto bytes = serialize_label(sample_label());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_label(bytes), std::runtime_error);
}

TEST(LabelSerialization, DeserializedLabelsAnswerQueries) {
  util::Rng rng(3);
  const auto gg = graph::random_apollonian(60, rng);
  const hierarchy::DecompositionTree tree(
      gg.graph, separator::PlanarCycleSeparator(gg.positions));
  const PathOracle oracle(tree, 0.4);
  for (Vertex u = 0; u < 60; u += 7)
    for (Vertex v = 1; v < 60; v += 11) {
      const DistanceLabel lu =
          deserialize_label(serialize_label(oracle.label(u)));
      const DistanceLabel lv =
          deserialize_label(serialize_label(oracle.label(v)));
      EXPECT_EQ(query_labels(lu, lv), oracle.query(u, v));
    }
}

TEST(LabelSerialization, WireSizeBeatsWordAccounting) {
  // Varint encoding should cost fewer bits than the canonical 64-bit word
  // count for real labels (ids are small).
  util::Rng rng(5);
  const auto gg = graph::random_apollonian(200, rng);
  const hierarchy::DecompositionTree tree(
      gg.graph, separator::PlanarCycleSeparator(gg.positions));
  const PathOracle oracle(tree, 0.25);
  for (Vertex v = 0; v < 200; v += 23) {
    const DistanceLabel& label = oracle.label(v);
    EXPECT_LT(serialized_bits(label), label.size_in_words() * 64);
  }
}

// Fuzz-style hardening: deserialize_label must never crash, hang, or
// over-read on adversarial input — it either parses or throws
// std::runtime_error.

DistanceLabel realistic_label() {
  util::Rng rng(9);
  const auto gg = graph::random_apollonian(80, rng);
  const hierarchy::DecompositionTree tree(
      gg.graph, separator::PlanarCycleSeparator(gg.positions));
  const PathOracle oracle(tree, 0.3);
  return oracle.label(37);
}

TEST(LabelSerializationFuzz, EveryProperPrefixThrows) {
  const auto bytes = serialize_label(realistic_label());
  ASSERT_GT(bytes.size(), 2u);
  // The part/connection counts are declared up front, so no proper prefix
  // can be self-consistent: each must throw, never return or crash.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    EXPECT_THROW(deserialize_label(prefix), std::runtime_error)
        << "prefix length " << len;
  }
}

TEST(LabelSerializationFuzz, SingleBitFlipsNeverCrash) {
  const auto bytes = serialize_label(realistic_label());
  util::Rng rng(21);
  for (int trial = 0; trial < 2000; ++trial) {
    auto corrupt = bytes;
    const std::size_t byte = rng.next_below(corrupt.size());
    corrupt[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    try {
      // A flip in a double payload parses to a different value; anything
      // structural must surface as std::runtime_error. Round-tripping the
      // parse proves no out-of-bounds state escaped.
      const DistanceLabel parsed = deserialize_label(corrupt);
      const auto reserialized = serialize_label(parsed);
      EXPECT_FALSE(reserialized.empty());
    } catch (const std::runtime_error&) {
      // expected for structural corruption
    }
  }
}

TEST(LabelSerializationFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(33);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> garbage(rng.next_below(300));
    for (auto& byte : garbage)
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    try {
      (void)deserialize_label(garbage);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(LabelSerializationFuzz, ImplausibleCountsRejectedUpFront) {
  // A count varint claiming far more parts/connections than the buffer
  // could hold must be rejected immediately (no giant allocation, no long
  // parse loop).
  std::vector<std::uint8_t> bytes;
  append_varint(bytes, 1);                      // vertex
  append_varint(bytes, 0xffffffffffffull);      // absurd part count
  EXPECT_THROW(deserialize_label(bytes), std::runtime_error);

  bytes.clear();
  append_varint(bytes, 1);   // vertex
  append_varint(bytes, 1);   // one part
  append_varint(bytes, 0);   // node delta
  append_varint(bytes, 0);   // path
  append_varint(bytes, 0xffffffffffffull);  // absurd connection count
  EXPECT_THROW(deserialize_label(bytes), std::runtime_error);
}

TEST(LabelSerialization, EmptyLabel) {
  DistanceLabel label;
  label.vertex = 0;
  const DistanceLabel back = deserialize_label(serialize_label(label));
  EXPECT_EQ(back.vertex, 0u);
  EXPECT_TRUE(back.parts.empty());
}

}  // namespace
}  // namespace pathsep::oracle
