#include "treedec/clique_weight.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "treedec/center.hpp"

namespace pathsep::treedec {
namespace {

TEST(CliqueWeightType, GeneralizesVertexWeights) {
  // Singleton cliques reduce f to a plain vertex-weight sum.
  CliqueWeight cw;
  for (Vertex v = 0; v < 4; ++v) {
    cw.cliques.push_back({v});
    cw.weight.push_back(static_cast<double>(v + 1));
  }
  std::vector<bool> members{true, false, true, false};
  EXPECT_DOUBLE_EQ(cw.weight_of(members), 1.0 + 3.0);
  EXPECT_DOUBLE_EQ(cw.total(), 10.0);
}

TEST(CliqueWeightType, SharedCliqueBreaksAdditivity) {
  // The §3 remark: with a clique intersecting both A and B,
  // f(A) + f(B) > f(A ∪ B) is possible.
  CliqueWeight cw;
  cw.cliques.push_back({0, 1});
  cw.weight.push_back(5.0);
  std::vector<bool> a{true, false}, b{false, true}, both{true, true};
  EXPECT_DOUBLE_EQ(cw.weight_of(a) + cw.weight_of(b), 10.0);
  EXPECT_DOUBLE_EQ(cw.weight_of(both), 5.0);
}

TEST(Torso, JointSetsBecomeCliques) {
  // Path 0-1-2-3-4: bags from min-degree elimination are edges; the torso
  // of an interior bag is just that edge plus the joint singletons.
  const Graph g = graph::path_graph(5);
  const TreeDecomposition td = heuristic_decomposition(g);
  const int bag = center_bag(td, g);
  const Torso torso = torso_of_bag(g, td, bag);
  EXPECT_EQ(torso.graph.num_vertices(),
            td.bags[static_cast<std::size_t>(bag)].size());
  // Bag-induced edges survive.
  for (Vertex u = 0; u < torso.graph.num_vertices(); ++u)
    for (const graph::Arc& a : torso.graph.neighbors(u))
      EXPECT_NE(torso.to_parent[u], torso.to_parent[a.to]);
}

TEST(Torso, CompletesNonEdgesOfJointSets) {
  // Star K_{1,4}: decomposition bags {hub, leaf}; a bag's torso with two
  // joint vertices... build a graph where the joint set is larger: C4 with
  // a chord-free bag of 3 vertices in a width-2 decomposition.
  const Graph g = graph::cycle_graph(6);
  const TreeDecomposition td = heuristic_decomposition(g);
  // Every bag of the cycle has 3 vertices; the torso must be the triangle.
  const int bag = center_bag(td, g);
  const Torso torso = torso_of_bag(g, td, bag);
  ASSERT_EQ(torso.graph.num_vertices(), 3u);
  EXPECT_EQ(torso.graph.num_edges(), 3u);  // completed into K3
}

// Lemma 5, end to end: every half-size separator of the torso (w.r.t. the
// constructed clique-weight) halves the original graph by vertex count.
class Lemma5 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma5, HalfSizeTorsoSeparatorsHalveTheGraph) {
  util::Rng rng(GetParam());
  const Graph g = graph::random_ktree(60, 3, rng);
  const std::size_t n = g.num_vertices();
  const TreeDecomposition td = heuristic_decomposition(g);
  const int bag = center_bag(td, g);
  const Torso torso = torso_of_bag(g, td, bag);
  const CliqueWeight cw = lemma5_clique_weight(g, td, bag, torso);
  const double total = cw.total();
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n));

  const std::size_t t = torso.graph.num_vertices();
  ASSERT_LE(t, 12u) << "torso too large for exhaustive subset check";
  // Enumerate every subset S of the torso; when S is half-size for the
  // clique-weight, the translated separator must halve g.
  for (std::size_t mask = 0; mask < (std::size_t{1} << t); ++mask) {
    std::vector<bool> separator(t, false);
    for (std::size_t i = 0; i < t; ++i)
      if (mask & (std::size_t{1} << i)) separator[i] = true;

    const graph::Components comps =
        graph::connected_components(torso.graph, separator);
    double heaviest = 0;
    for (std::uint32_t c = 0; c < comps.count(); ++c) {
      std::vector<bool> members(t, false);
      for (Vertex v = 0; v < t; ++v)
        if (comps.label[v] == c) members[v] = true;
      heaviest = std::max(heaviest, cw.weight_of(members));
    }
    if (heaviest <= total / 2) {
      const std::size_t largest =
          largest_component_after_torso_separator(g, torso, separator);
      EXPECT_LE(largest, n / 2)
          << "half-size torso separator mask " << mask
          << " left a component of " << largest;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma5, ::testing::Values(1, 2, 3, 4, 5));

TEST(Lemma5Weights, ComponentCliquesSitInJointSets) {
  util::Rng rng(9);
  const Graph g = graph::random_ktree(40, 2, rng);
  const TreeDecomposition td = heuristic_decomposition(g);
  const int bag = center_bag(td, g);
  const Torso torso = torso_of_bag(g, td, bag);
  const CliqueWeight cw = lemma5_clique_weight(g, td, bag, torso);
  // Every clique of the weight must be a clique of the torso graph.
  for (const auto& clique : cw.cliques)
    for (std::size_t i = 0; i < clique.size(); ++i)
      for (std::size_t j = i + 1; j < clique.size(); ++j)
        EXPECT_TRUE(torso.graph.has_edge(clique[i], clique[j]))
            << clique[i] << "," << clique[j];
}

TEST(Lemma5Weights, RejectsMismatchedTorso) {
  const Graph g = graph::path_graph(6);
  const TreeDecomposition td = heuristic_decomposition(g);
  const Torso torso = torso_of_bag(g, td, 0);
  if (td.num_bags() > 1 && td.bags[0] != td.bags[1]) {
    EXPECT_THROW(lemma5_clique_weight(g, td, 1, torso), std::invalid_argument);
  }
}

}  // namespace
}  // namespace pathsep::treedec
