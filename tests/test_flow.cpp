#include "flow/flow_separator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/audit_flow.hpp"
#include "flow/cutter.hpp"
#include "flow/max_flow.hpp"
#include "flow/registry.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "hierarchy/decomposition_tree.hpp"
#include "oracle/labels.hpp"
#include "oracle/path_oracle.hpp"
#include "oracle/serialize.hpp"
#include "separator/validate.hpp"
#include "sssp/dijkstra.hpp"
#include "util/rng.hpp"

namespace pathsep::flow {
namespace {

using graph::Graph;
using graph::Vertex;

std::vector<Vertex> all_vertices(const Graph& g) {
  std::vector<Vertex> members(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) members[v] = v;
  return members;
}

/// True when removing `blocked` disconnects s from t in g.
bool separates(const Graph& g, Vertex s, Vertex t,
               const std::vector<Vertex>& blocked) {
  std::vector<bool> removed(g.num_vertices(), false);
  for (const Vertex v : blocked) removed[v] = true;
  if (removed[s] || removed[t]) return true;
  std::vector<Vertex> queue{s};
  std::vector<bool> seen(g.num_vertices(), false);
  seen[s] = true;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    if (queue[head] == t) return false;
    for (const graph::Arc& arc : g.neighbors(queue[head]))
      if (!removed[arc.to] && !seen[arc.to]) {
        seen[arc.to] = true;
        queue.push_back(arc.to);
      }
  }
  return true;
}

/// Smallest vertex cut separating s from t, by exhaustive search over
/// subsets (s, t excluded). Exponential — tiny graphs only.
std::size_t brute_force_min_cut(const Graph& g, Vertex s, Vertex t) {
  std::vector<Vertex> candidates;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (v != s && v != t) candidates.push_back(v);
  const std::size_t n = candidates.size();
  std::size_t best = n + 1;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const auto bits = static_cast<std::size_t>(__builtin_popcount(mask));
    if (bits >= best) continue;
    std::vector<Vertex> blocked;
    for (std::size_t i = 0; i < n; ++i)
      if ((mask >> i) & 1u) blocked.push_back(candidates[i]);
    if (separates(g, s, t, blocked)) best = bits;
  }
  return best;
}

TEST(UnitFlowNetwork, MatchesBruteForceMinCut) {
  util::Rng rng(7);
  std::vector<Graph> graphs;
  graphs.push_back(graph::grid(3, 3).graph);
  graphs.push_back(graph::grid(2, 5).graph);
  graphs.push_back(graph::random_ktree(10, 3, rng));
  for (const Graph& g : graphs) {
    const std::vector<Vertex> members = all_vertices(g);
    const std::vector<bool> removed;
    const Vertex s = 0;
    const auto t = static_cast<Vertex>(g.num_vertices() - 1);
    if (separates(g, s, t, {})) continue;  // disconnected sample
    bool adjacent = false;
    for (const graph::Arc& arc : g.neighbors(s)) adjacent |= arc.to == t;

    UnitFlowNetwork net(g, members, removed, thread_arena());
    net.make_source(s);
    net.make_target(t);
    const AugmentStatus status = net.augment_to_max(1000);
    if (adjacent) {
      EXPECT_EQ(status, AugmentStatus::kUncuttable);
      continue;
    }
    ASSERT_EQ(status, AugmentStatus::kMaxFlow);
    EXPECT_EQ(net.flow_value(), brute_force_min_cut(g, s, t));

    for (const bool source_side : {true, false}) {
      const UnitFlowNetwork::SideCut cut =
          source_side ? net.source_side_cut() : net.target_side_cut();
      EXPECT_EQ(cut.cut.size(), net.flow_value());
      EXPECT_TRUE(separates(g, s, t, cut.cut));
      EXPECT_TRUE(std::is_sorted(cut.cut.begin(), cut.cut.end()));
      check::audit_flow_cut(net, cut, source_side);
    }
  }
}

TEST(UnitFlowNetwork, UncuttableWhenTerminalsTouch) {
  const Graph g = graph::grid(2, 2).graph;
  const std::vector<Vertex> members = all_vertices(g);
  const std::vector<bool> removed;
  UnitFlowNetwork net(g, members, removed, thread_arena());
  net.make_source(0);
  net.make_target(1);  // grid neighbor of 0
  EXPECT_TRUE(net.touches_opposite(0, /*source=*/true));
  EXPECT_EQ(net.augment_to_max(1000), AugmentStatus::kUncuttable);
}

TEST(UnitFlowNetwork, FlowLimitAborts) {
  const Graph g = graph::grid(4, 4).graph;
  const std::vector<Vertex> members = all_vertices(g);
  const std::vector<bool> removed;
  UnitFlowNetwork net(g, members, removed, thread_arena());
  net.make_source(0);
  net.make_target(15);
  EXPECT_EQ(net.augment_to_max(0), AugmentStatus::kLimitExceeded);
}

TEST(UnitFlowNetwork, IncrementalTerminalGrowth) {
  // Adding terminals between augment calls keeps the flow feasible and can
  // only raise it: the audit validates the final state end to end.
  const Graph g = graph::grid(6, 6).graph;
  const std::vector<Vertex> members = all_vertices(g);
  const std::vector<bool> removed;
  UnitFlowNetwork net(g, members, removed, thread_arena());
  net.make_source(0);
  net.make_target(35);
  ASSERT_EQ(net.augment_to_max(1000), AugmentStatus::kMaxFlow);
  const std::size_t first = net.flow_value();
  net.make_source(6);   // second row, first column
  net.make_target(29);  // fifth row, last column
  ASSERT_EQ(net.augment_to_max(1000), AugmentStatus::kMaxFlow);
  EXPECT_GE(net.flow_value(), first);
  check::audit_flow_cut(net, net.source_side_cut(), true);
  check::audit_flow_cut(net, net.target_side_cut(), false);
}

CutCandidate candidate(std::size_t cut_size, std::size_t near,
                       std::size_t far) {
  CutCandidate c;
  c.cut.assign(cut_size, 0);
  for (std::size_t i = 0; i < cut_size; ++i)
    c.cut[i] = static_cast<Vertex>(i);
  c.side_near = near;
  c.side_far = far;
  c.num_members = cut_size + near + far;
  return c;
}

TEST(ParetoFront, OfferKeepsDominanceInvariant) {
  ParetoFront front;
  EXPECT_TRUE(front.offer(candidate(5, 10, 90)));   // (5, 90)
  EXPECT_TRUE(front.offer(candidate(8, 40, 60)));   // (8, 60)
  EXPECT_FALSE(front.offer(candidate(9, 35, 65)));  // dominated by (8, 60)
  EXPECT_FALSE(front.offer(candidate(5, 9, 91)));   // tie: incumbent stays
  EXPECT_TRUE(front.offer(candidate(6, 25, 75)));   // new point (6, 75)
  EXPECT_TRUE(front.offer(candidate(7, 50, 50)));   // evicts (8, 60)
  ASSERT_EQ(front.size(), 3u);
  const auto cuts = front.cuts();
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_GT(cuts[i].cut.size(), cuts[i - 1].cut.size());
    EXPECT_LT(cuts[i].max_side(), cuts[i - 1].max_side());
  }
  EXPECT_EQ(front.best_within(80)->cut.size(), 6u);
  EXPECT_EQ(front.most_balanced()->max_side(), 50u);
  EXPECT_EQ(front.best_within(40), nullptr);
}

TEST(FlowCutter, FrontIsMonotoneOnRoadNetwork) {
  util::Rng rng(11);
  const graph::GeometricGraph gg = graph::road_network(40, 40, rng);
  const FlowSeparator finder(gg.positions);
  std::vector<Vertex> ids(gg.graph.num_vertices());
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) ids[v] = v;
  const ParetoFront front = finder.pareto_front(gg.graph, ids);
  ASSERT_FALSE(front.empty());
  const auto cuts = front.cuts();
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    EXPECT_EQ(cuts[i].side_near + cuts[i].side_far + cuts[i].cut.size(),
              cuts[i].num_members);
    if (i == 0) continue;
    EXPECT_GT(cuts[i].cut.size(), cuts[i - 1].cut.size());
    EXPECT_LT(cuts[i].max_side(), cuts[i - 1].max_side());
  }
  // The deepest band step (45% per side) guarantees a reasonably balanced
  // candidate; find()'s outer loop closes the gap to the n/2 bound of P3.
  EXPECT_NE(front.best_within(gg.graph.num_vertices() * 7 / 10), nullptr);
}

void expect_valid_separator(const Graph& g,
                            const separator::PathSeparator& s) {
  const separator::ValidationReport report = separator::validate(g, s);
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(FlowSeparator, ValidOnPerturbedGrid) {
  util::Rng rng(3);
  const graph::GeometricGraph gg = graph::road_network(32, 32, rng);
  const FlowSeparator finder(gg.positions);
  expect_valid_separator(gg.graph, finder.find(gg.graph));
}

TEST(FlowSeparator, ValidWithoutCoordinates) {
  util::Rng rng(5);
  const FlowSeparator finder;  // double-sweep ordering fallback
  const Graph ktree = graph::random_ktree(400, 4, rng);
  expect_valid_separator(ktree, finder.find(ktree));
  const Graph expander = graph::random_expander(300, 4, rng);
  expect_valid_separator(expander, finder.find(expander));
}

TEST(FlowSeparator, RegistryRoundTrip) {
  const auto finder = make_finder("flow");
  EXPECT_EQ(finder->name(), "flow");
  EXPECT_TRUE(finder->guarantees_definition1());
  EXPECT_THROW((void)make_finder("no-such-finder"), std::invalid_argument);
  EXPECT_THROW((void)make_finder("planar-cycle"), std::invalid_argument);
}

std::uint64_t label_digest(const std::vector<oracle::DistanceLabel>& labels) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const oracle::DistanceLabel& label : labels)
    for (const std::uint8_t byte : oracle::serialize_label(label)) {
      h ^= byte;
      h *= 1099511628211ULL;
    }
  return h;
}

TEST(FlowSeparator, DeterministicAcrossThreads) {
  util::Rng rng(23);
  const graph::GeometricGraph gg = graph::road_network(24, 24, rng);
  const FlowSeparator finder(gg.positions);
  std::uint64_t first_digest = 0;
  for (const std::size_t threads : {1u, 8u}) {
    hierarchy::DecompositionTree::Options options;
    options.threads = threads;
    const hierarchy::DecompositionTree tree(gg.graph, finder, options);
    const auto labels = oracle::build_labels(tree, 0.1, threads);
    const std::uint64_t digest = label_digest(labels);
    if (threads == 1)
      first_digest = digest;
    else
      EXPECT_EQ(digest, first_digest);
  }
}

TEST(FlowSeparator, OracleSandwichOnPerturbedGrid) {
  // End-to-end: FlowSeparator -> decomposition tree -> (1+eps) oracle. The
  // estimate must never undercut the exact Dijkstra distance and never
  // exceed it by more than the chosen stretch.
  constexpr double kEpsilon = 0.05;
  util::Rng rng(41);
  const graph::GeometricGraph gg = graph::road_network(20, 20, rng);
  const FlowSeparator finder(gg.positions);
  const hierarchy::DecompositionTree tree(gg.graph, finder);
  const oracle::PathOracle oracle(tree, kEpsilon);
  const Vertex sources[] = {0, 57, 211, 399};
  for (const Vertex s : sources) {
    const sssp::ShortestPaths truth = sssp::dijkstra(gg.graph, s);
    for (Vertex v = 0; v < gg.graph.num_vertices(); v += 7) {
      const graph::Weight est = oracle.query(s, v);
      EXPECT_GE(est, truth.dist[v] - 1e-9);
      EXPECT_LE(est, truth.dist[v] * (1 + kEpsilon) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace pathsep::flow
