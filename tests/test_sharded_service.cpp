// The shard-per-core serving stack: the lock-free MPSC intake ring, the
// epoch-based snapshot reclaimer (manual-clock proofs that nothing is freed
// while pinned), the ShardedEngine's exactness and determinism across shard
// counts, concurrent swap-while-querying, and the binary wire protocol with
// the epoll front-end. Runs under the `service` label, so the TSan leg of
// scripts/check.sh executes every concurrent scenario here with race
// detection on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "hierarchy/decomposition_tree.hpp"
#include "separator/finders.hpp"
#include "service/net.hpp"
#include "service/net_server.hpp"
#include "service/query_engine.hpp"
#include "service/sharded_engine.hpp"
#include "util/affinity.hpp"
#include "util/epoch.hpp"
#include "util/mpsc_ring.hpp"
#include "util/rng.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace pathsep::service {
namespace {

using graph::Vertex;
using graph::Weight;

// ------------------------------------------------------------------ MpscRing

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(util::MpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(util::MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(util::MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(util::MpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(util::MpscRing<int>(1000).capacity(), 1024u);
}

TEST(MpscRing, FillDrainAndWrapAround) {
  util::MpscRing<int> ring(4);
  int out[8];
  // Three laps around a 4-slot ring exercises the sequence recycling.
  for (int lap = 0; lap < 3; ++lap) {
    for (int i = 0; i < 4; ++i)
      EXPECT_TRUE(ring.try_push(lap * 4 + i));
    EXPECT_FALSE(ring.try_push(99)) << "full ring must reject";
    const std::size_t n = ring.pop_batch(out, 8);
    ASSERT_EQ(n, 4u);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], lap * 4 + i);
    EXPECT_TRUE(ring.empty_approx());
    ring.audit();
  }
}

TEST(MpscRing, PopBatchRespectsMaxAndPreservesFifo) {
  util::MpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(i));
  int out[16];
  EXPECT_EQ(ring.pop_batch(out, 3), 3u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[2], 2);
  EXPECT_EQ(ring.pop_batch(out, 16), 7u);
  EXPECT_EQ(out[0], 3);
  EXPECT_EQ(out[6], 9);
  EXPECT_EQ(ring.pop_batch(out, 16), 0u);
}

TEST(MpscRing, ConcurrentProducersDeliverEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  util::MpscRing<int> ring(256);
  std::vector<int> seen(kProducers * kPerProducer, 0);
  std::atomic<bool> done{false};

  std::thread consumer([&ring, &seen, &done] {
    int out[64];
    std::size_t total = 0;
    while (total < kProducers * kPerProducer) {
      const std::size_t n = ring.pop_batch(out, 64);
      for (std::size_t i = 0; i < n; ++i) ++seen[out[i]];
      total += n;
      if (n == 0) std::this_thread::yield();
    }
    done.store(true);
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!ring.try_push(value)) std::this_thread::yield();
      }
    });
  for (std::thread& t : producers) t.join();
  consumer.join();
  ASSERT_TRUE(done.load());
  for (int i = 0; i < kProducers * kPerProducer; ++i)
    EXPECT_EQ(seen[i], 1) << "item " << i;
  ring.audit();
}

// ------------------------------------------------------- EpochReclaimer

TEST(EpochReclaimer, NothingIsFreedWhilePinned) {
  util::EpochReclaimer epochs(/*reserved=*/1, /*shared=*/2);
  bool destroyed = false;
  epochs.pin(0);
  epochs.retire([&destroyed] { destroyed = true; });
  EXPECT_EQ(epochs.retired_pending(), 1u);
  // The pinned reader was live when the object was retired — the manual
  // clock proves reclaim cannot run the destructor yet.
  EXPECT_EQ(epochs.try_reclaim(), 0u);
  EXPECT_FALSE(destroyed);
  epochs.unpin(0);
  EXPECT_EQ(epochs.try_reclaim(), 1u);
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(epochs.retired_pending(), 0u);
}

TEST(EpochReclaimer, PinAfterRetireDoesNotBlockReclaim) {
  util::EpochReclaimer epochs(1);
  bool destroyed = false;
  epochs.retire([&destroyed] { destroyed = true; });
  // A reader pinned *after* the retire provably sees the new pointer
  // (invariant E1), so it never constrains the old object.
  epochs.pin(0);
  EXPECT_EQ(epochs.try_reclaim(), 1u);
  EXPECT_TRUE(destroyed);
  epochs.unpin(0);
}

TEST(EpochReclaimer, ReadersConstrainOnlyObjectsRetiredAfterTheirPin) {
  util::EpochReclaimer epochs(2);
  bool first_destroyed = false;
  bool second_destroyed = false;
  epochs.pin(0);  // live before either retire
  epochs.retire([&first_destroyed] { first_destroyed = true; });
  epochs.pin(1);  // live before the second retire only
  epochs.retire([&second_destroyed] { second_destroyed = true; });
  EXPECT_EQ(epochs.try_reclaim(), 0u);

  epochs.unpin(0);
  // Slot 1 pinned after the first retire: the first object frees, the
  // second stays.
  EXPECT_EQ(epochs.try_reclaim(), 1u);
  EXPECT_TRUE(first_destroyed);
  EXPECT_FALSE(second_destroyed);

  epochs.unpin(1);
  EXPECT_EQ(epochs.try_reclaim(), 1u);
  EXPECT_TRUE(second_destroyed);
}

TEST(EpochReclaimer, DestructorRunsRemainingRetirees) {
  int destroyed = 0;
  {
    util::EpochReclaimer epochs(1);
    epochs.retire([&destroyed] { ++destroyed; });
    epochs.retire([&destroyed] { ++destroyed; });
  }
  EXPECT_EQ(destroyed, 2);
}

TEST(EpochReclaimer, PinAnyClaimsDistinctSlotsAndRaiiUnpins) {
  util::EpochReclaimer epochs(/*reserved=*/2, /*shared=*/4);
  {
    util::EpochPin a(epochs);
    util::EpochPin b(epochs);
    EXPECT_NE(a.slot(), b.slot());
    EXPECT_GE(a.slot(), 2u) << "pin_any must not touch owner slots";
    EXPECT_LT(epochs.min_pinned(), UINT64_MAX);
  }
  EXPECT_EQ(epochs.min_pinned(), UINT64_MAX);
}

TEST(EpochReclaimer, ConcurrentPinUnpinNeverFreesAPinnedObject) {
  util::EpochReclaimer epochs(/*reserved=*/0, /*shared=*/8);
  // Each "object" is a flag the readers check while pinned: a reader that
  // observes its claimed generation destroyed caught a use-after-free.
  constexpr int kGenerations = 200;
  std::vector<std::atomic<int>> alive(kGenerations);
  for (auto& a : alive) a.store(1);
  std::atomic<int> current{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r)
    readers.emplace_back([&epochs, &alive, &current, &stop] {
      while (!stop.load()) {
        const std::size_t slot = epochs.pin_any();
        const int gen = current.load(std::memory_order_seq_cst);
        EXPECT_EQ(alive[gen].load(std::memory_order_seq_cst), 1)
            << "read a generation that was already destroyed";
        epochs.unpin(slot);
      }
    });

  for (int gen = 1; gen < kGenerations; ++gen) {
    const int old = gen - 1;
    current.store(gen, std::memory_order_seq_cst);
    epochs.retire([&alive, old] { alive[old].store(0); });
    epochs.try_reclaim();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  while (epochs.retired_pending() != 0) epochs.try_reclaim();
}

// ------------------------------------------------------------------ Affinity

TEST(Affinity, ReportsCoresAndPinningIsBestEffort) {
  EXPECT_GE(util::num_cores(), 1u);
#if defined(__linux__)
  // On Linux pinning to an in-range core (modulo wrap) should succeed.
  EXPECT_TRUE(util::pin_thread_to_core(0));
  EXPECT_TRUE(util::pin_thread_to_core(util::num_cores() + 3));
#endif
}

// ---------------------------------------------------------------- Wire codec

TEST(Wire, ScalarsRoundTripLittleEndian) {
  std::vector<std::uint8_t> buf;
  wire::append_u32(buf, 0x01020304u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04u);  // little-endian on the wire
  EXPECT_EQ(buf[3], 0x01u);
  EXPECT_EQ(wire::read_u32(buf.data()), 0x01020304u);

  buf.clear();
  wire::append_f64(buf, 1234.5625);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(wire::read_f64(buf.data()), 1234.5625);
  buf.clear();
  wire::append_f64(buf, -0.0);
  EXPECT_EQ(wire::read_f64(buf.data()), 0.0);
}

TEST(Wire, RequestFramesRoundTripThroughTheParser) {
  const std::vector<Query> queries = {{1, 2}, {7, 7}, {0, 41}};
  std::vector<std::uint8_t> buf;
  wire::append_request(buf, 0xDEADBEEFu, queries);
  // Two frames back-to-back: the parser must consume exactly one.
  wire::append_request(buf, 5u, std::vector<Query>{{9, 9}});

  wire::ParsedRequest request;
  std::vector<Query> parsed;
  ASSERT_EQ(wire::parse_request(buf, 0, request, parsed),
            wire::ParseStatus::kRequest);
  EXPECT_EQ(request.request_id, 0xDEADBEEFu);
  EXPECT_EQ(request.frame_bytes, 4u + 4u + 3u * 8u);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[1].u, 7u);
  EXPECT_EQ(parsed[2].v, 41u);

  ASSERT_EQ(wire::parse_request(buf, request.frame_bytes, request, parsed),
            wire::ParseStatus::kRequest);
  EXPECT_EQ(request.request_id, 5u);
  ASSERT_EQ(parsed.size(), 1u);
}

TEST(Wire, ParserFlagsShortAndOversizedFrames) {
  wire::ParsedRequest request;
  std::vector<Query> parsed;

  std::vector<std::uint8_t> partial;
  wire::append_u32(partial, 12);  // header promises 12 payload bytes...
  wire::append_u32(partial, 1);   // ...but only 4 arrived
  EXPECT_EQ(wire::parse_request(partial, 0, request, parsed),
            wire::ParseStatus::kIncomplete);

  std::vector<std::uint8_t> tiny;
  wire::append_u32(tiny, 3);  // below the 4-byte request_id minimum
  EXPECT_EQ(wire::parse_request(tiny, 0, request, parsed),
            wire::ParseStatus::kMalformed);

  std::vector<std::uint8_t> ragged;
  wire::append_u32(ragged, 4 + 7);  // pair section not a multiple of 8
  EXPECT_EQ(wire::parse_request(ragged, 0, request, parsed),
            wire::ParseStatus::kMalformed);

  std::vector<std::uint8_t> huge;
  wire::append_u32(huge,
                   static_cast<std::uint32_t>(wire::kMaxFrameBytes + 12));
  EXPECT_EQ(wire::parse_request(huge, 0, request, parsed),
            wire::ParseStatus::kMalformed);
}

// ------------------------------------------------------------- ShardedEngine

oracle::PathOracle grid_oracle(std::size_t side = 12, double eps = 0.3) {
  graph::GridGraph gg = graph::grid(side, side);
  const hierarchy::DecompositionTree tree(
      gg.graph, separator::GridLineSeparator(side, side));
  return oracle::PathOracle(tree, eps);
}

std::vector<Query> mixed_workload(Vertex n, std::size_t count,
                                  std::uint64_t seed = 29) {
  util::Rng rng(seed);
  std::vector<Query> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const Vertex v =
        i % 16 == 0 ? u : static_cast<Vertex>(rng.next_below(n));
    batch.push_back({u, v});
  }
  return batch;
}

std::uint64_t fnv_digest(const std::vector<Weight>& results) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Weight w : results) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(w));
    std::memcpy(&bits, &w, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xFFu;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

std::map<std::string, std::uint64_t> counter_family(
    const MetricsRegistry& metrics, const std::string& name) {
  std::map<std::string, std::uint64_t> family;
  for (const obs::MetricSample& sample : metrics.snapshot()) {
    if (sample.kind != obs::MetricKind::kCounter || sample.name != name)
      continue;
    std::string key;
    for (const auto& [label, value] : sample.labels)
      key += label + "=" + value + ";";
    family[key] = sample.counter_value;
  }
  return family;
}

std::uint64_t family_sum(const std::map<std::string, std::uint64_t>& family) {
  std::uint64_t sum = 0;
  for (const auto& [key, value] : family) sum += value;
  return sum;
}

TEST(ShardedEngine, MatchesThePooledEngineAtEveryShardCount) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  const std::vector<Query> batch =
      mixed_workload(static_cast<Vertex>(snapshot->num_vertices()), 3000);

  QueryEngineOptions pooled_opts;
  pooled_opts.threads = 1;
  pooled_opts.cache_capacity = 0;
  QueryEngine pooled(snapshot, pooled_opts);
  const std::vector<Weight> expected = pooled.query_batch(batch);
  const std::uint64_t expected_digest = fnv_digest(expected);

  for (const std::size_t shards : {1u, 2u, 8u}) {
    ShardedEngineOptions opts;
    opts.shards = shards;
    opts.inline_cutoff = 1;  // force the ring path even for this batch
    opts.drain_batch = 64;
    ShardedEngine engine(snapshot, opts);
    EXPECT_EQ(engine.num_shards(), shards);
    const std::vector<Weight> got = engine.query_batch(batch);
    ASSERT_EQ(got.size(), expected.size());
    // Byte-identical across shard counts: partitioning decides who
    // computes, never the answer (the bench cross-checks the same digest).
    EXPECT_EQ(fnv_digest(got), expected_digest) << shards << " shards";
  }
}

TEST(ShardedEngine, InlineAndSingleQueryPathsAgreeWithTheRings) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  const auto n = static_cast<Vertex>(snapshot->num_vertices());
  const std::vector<Query> batch = mixed_workload(n, 256, 31);

  ShardedEngineOptions opts;
  opts.shards = 2;
  ShardedEngine engine(snapshot, opts);
  ASSERT_GT(engine.inline_cutoff(), 0u);

  // Below the cutoff: answered inline on this thread.
  const std::vector<Query> small(batch.begin(), batch.begin() + 4);
  const std::vector<Weight> small_results = engine.query_batch(small);
  for (std::size_t i = 0; i < small.size(); ++i)
    EXPECT_EQ(small_results[i], engine.query(small[i].u, small[i].v));

  // shard_of is symmetric, so both directions of a pair share an owner.
  EXPECT_EQ(engine.shard_of(3, 17), engine.shard_of(17, 3));
}

TEST(ShardedEngine, SubmitBatchCompletesAsynchronously) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  const auto n = static_cast<Vertex>(snapshot->num_vertices());
  const std::vector<Query> batch = mixed_workload(n, 512, 37);

  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.inline_cutoff = 1;
  ShardedEngine engine(snapshot, opts);
  const std::vector<Weight> expected = engine.query_batch(batch);

  std::vector<Weight> results(batch.size());
  std::atomic<std::uint32_t> remaining{
      static_cast<std::uint32_t>(batch.size())};
  engine.submit_batch(batch, results.data(), &remaining);
  std::uint32_t left;
  while ((left = remaining.load(std::memory_order_acquire)) != 0)
    remaining.wait(left, std::memory_order_acquire);
  EXPECT_EQ(fnv_digest(results), fnv_digest(expected));
}

TEST(ShardedEngine, TinyRingsFallBackInlineAndStayExact) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  const auto n = static_cast<Vertex>(snapshot->num_vertices());
  const std::vector<Query> batch = mixed_workload(n, 4000, 41);

  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.ring_capacity = 2;  // overflow is guaranteed at this batch size
  opts.inline_cutoff = 1;
  ShardedEngineOptions reference_opts;
  reference_opts.shards = 1;
  ShardedEngine reference(snapshot, reference_opts);
  ShardedEngine engine(snapshot, opts);
  EXPECT_EQ(fnv_digest(engine.query_batch(batch)),
            fnv_digest(reference.query_batch(batch)));
  // Backpressure must have taken the inline fallback at least once.
  const auto fallbacks =
      counter_family(engine.metrics(), "shard_intake_full_total");
  EXPECT_GT(family_sum(fallbacks), 0u);
}

TEST(ShardedEngine, AnswerFamilySumsToQueriesAtEveryShardCount) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  const std::vector<Query> batch =
      mixed_workload(static_cast<Vertex>(snapshot->num_vertices()), 2000);

  std::map<std::string, std::uint64_t> baseline;
  for (const std::size_t shards : {1u, 2u, 8u}) {
    ShardedEngineOptions opts;
    opts.shards = shards;
    opts.inline_cutoff = 1;
    ShardedEngine engine(snapshot, opts);
    engine.query_batch(batch);
    const auto answers = counter_family(engine.metrics(), "answers_total");
    const auto queries = counter_family(engine.metrics(), "queries_total");
    ASSERT_FALSE(answers.empty());
    EXPECT_EQ(family_sum(answers), batch.size());
    EXPECT_EQ(family_sum(queries), batch.size());
    if (baseline.empty())
      baseline = answers;
    else
      EXPECT_EQ(answers, baseline) << shards << " shards diverged";
  }
}

TEST(ShardedEngine, CachedServingKeepsAnswersAndSumInvariant) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  const std::vector<Query> batch =
      mixed_workload(static_cast<Vertex>(snapshot->num_vertices()), 1000);
  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.inline_cutoff = 1;
  opts.cache_capacity = 1 << 14;
  ShardedEngine engine(snapshot, opts);
  const std::vector<Weight> cold = engine.query_batch(batch);
  const std::vector<Weight> warm = engine.query_batch(batch);
  EXPECT_EQ(fnv_digest(cold), fnv_digest(warm));
  const auto answers = counter_family(engine.metrics(), "answers_total");
  EXPECT_EQ(family_sum(answers), 2 * batch.size());
  std::uint64_t cached = 0;
  for (const auto& [key, value] : answers)
    if (key.find("level=cached;") != std::string::npos) cached = value;
  EXPECT_GT(cached, 0u);
}

TEST(ShardedEngine, SwapRetiresAndReclaimsTheOldSnapshot) {
  auto first = std::make_shared<const oracle::PathOracle>(grid_oracle());
  auto second =
      std::make_shared<const oracle::PathOracle>(grid_oracle(12, 0.8));
  ShardedEngineOptions opts;
  opts.shards = 2;
  ShardedEngine engine(first, opts);
  std::weak_ptr<const oracle::PathOracle> watch = first;
  first.reset();

  engine.replace_snapshot(second);
  // Workers are idle (nothing pinned), so reclaim frees the old snapshot.
  while (engine.retired_pending() != 0) engine.reclaim_retired();
  EXPECT_TRUE(watch.expired()) << "old snapshot leaked past reclamation";
  EXPECT_EQ(engine.snapshot().get(), second.get());
}

TEST(ShardedEngine, ConcurrentSwapWhileQueryingStaysValid) {
  // Two oracles over the same graph at different eps: under a concurrent
  // swap, every answer must equal one of the two snapshots' answers — no
  // torn read, no answer from a destroyed snapshot.
  auto coarse = std::make_shared<const oracle::PathOracle>(grid_oracle());
  auto fine =
      std::make_shared<const oracle::PathOracle>(grid_oracle(12, 0.05));
  const auto n = static_cast<Vertex>(coarse->num_vertices());
  const std::vector<Query> batch = mixed_workload(n, 400, 43);

  std::vector<Weight> from_coarse(batch.size());
  std::vector<Weight> from_fine(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    from_coarse[i] =
        batch[i].u == batch[i].v ? 0 : coarse->query(batch[i].u, batch[i].v);
    from_fine[i] =
        batch[i].u == batch[i].v ? 0 : fine->query(batch[i].u, batch[i].v);
  }

  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.inline_cutoff = 1;  // ring path: workers hold the epoch pins
  opts.cache_capacity = 0;  // a cached answer would mask which snapshot won
  ShardedEngine engine(coarse, opts);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 2; ++t)
    hammers.emplace_back([&engine, &batch, &from_coarse, &from_fine, &stop,
                          &mismatches] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::vector<Weight> got = engine.query_batch(batch);
        for (std::size_t i = 0; i < got.size(); ++i)
          if (got[i] != from_coarse[i] && got[i] != from_fine[i])
            mismatches.fetch_add(1);
      }
    });

  for (int swap = 0; swap < 40; ++swap) {
    engine.replace_snapshot(swap % 2 == 0 ? fine : coarse);
    engine.reclaim_retired();
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : hammers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  while (engine.retired_pending() != 0) engine.reclaim_retired();
}

// ------------------------------------------------------------- Net front-end

#if defined(__linux__)

TEST(NetServer, RoundTripsBatchesOverLocalhost) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  const auto n = static_cast<Vertex>(snapshot->num_vertices());
  ShardedEngineOptions opts;
  opts.shards = 2;
  ShardedEngine engine(snapshot, opts);
  NetServer server(engine);
  server.start();
  ASSERT_NE(server.port(), 0u);

  wire::NetClient client;
  client.connect("127.0.0.1", server.port());
  std::vector<Weight> distances;

  // An empty batch is a valid ping.
  client.query_batch({}, distances);
  EXPECT_TRUE(distances.empty());

  const std::vector<Query> batch = mixed_workload(n, 300, 47);
  const std::vector<Weight> expected = engine.query_batch(batch);
  for (int frame = 0; frame < 5; ++frame) {
    client.query_batch(batch, distances);
    ASSERT_EQ(distances.size(), batch.size());
    EXPECT_EQ(fnv_digest(distances), fnv_digest(expected)) << frame;
  }

  const NetServer::Stats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.frames_in, 6u);
  EXPECT_EQ(stats.queries_answered, 5u * batch.size());
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);

  client.close();
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(NetServer, PipelinedFramesComeBackInOrder) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  ShardedEngineOptions opts;
  opts.shards = 1;
  ShardedEngine engine(snapshot, opts);
  NetServer server(engine);
  server.start();

  wire::NetClient client;
  client.connect("127.0.0.1", server.port());
  const std::vector<Query> a = {{0, 5}, {1, 9}};
  const std::vector<Query> b = {{2, 7}};
  client.send_request(11, a);
  client.send_request(22, b);
  std::vector<Weight> distances;
  EXPECT_EQ(client.recv_response(distances), 11u);
  EXPECT_EQ(distances.size(), a.size());
  EXPECT_EQ(client.recv_response(distances), 22u);
  EXPECT_EQ(distances.size(), b.size());
}

TEST(NetServer, MalformedFrameClosesOnlyThatConnection) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  ShardedEngineOptions opts;
  opts.shards = 1;
  ShardedEngine engine(snapshot, opts);
  NetServer server(engine);
  server.start();

  // Raw socket so we can send a frame the NetClient refuses to produce.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  std::vector<std::uint8_t> bad;
  wire::append_u32(bad, 3);  // payload_len below the request_id minimum
  ASSERT_EQ(::send(fd, bad.data(), bad.size(), 0),
            static_cast<ssize_t>(bad.size()));
  std::uint8_t byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0) << "server should close on garbage";
  ::close(fd);

  // The listener survives: a well-formed connection still round-trips.
  wire::NetClient client;
  client.connect("127.0.0.1", server.port());
  std::vector<Weight> distances;
  client.query_batch(std::vector<Query>{{0, 3}}, distances);
  ASSERT_EQ(distances.size(), 1u);
  EXPECT_EQ(distances[0], engine.query(0, 3));
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST(NetServer, StopIsIdempotentAndRestartable) {
  auto snapshot = std::make_shared<const oracle::PathOracle>(grid_oracle());
  ShardedEngineOptions opts;
  opts.shards = 1;
  ShardedEngine engine(snapshot, opts);
  NetServer server(engine);
  server.start();
  const std::uint16_t first_port = server.port();
  ASSERT_NE(first_port, 0u);
  server.stop();
  server.stop();  // idempotent
  server.start();  // a stopped server can serve again (fresh ephemeral port)
  wire::NetClient client;
  client.connect("127.0.0.1", server.port());
  std::vector<Weight> distances;
  client.query_batch(std::vector<Query>{{1, 2}}, distances);
  EXPECT_EQ(distances.size(), 1u);
}

#endif  // __linux__

}  // namespace
}  // namespace pathsep::service
