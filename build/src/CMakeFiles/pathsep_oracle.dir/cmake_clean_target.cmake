file(REMOVE_RECURSE
  "libpathsep_oracle.a"
)
