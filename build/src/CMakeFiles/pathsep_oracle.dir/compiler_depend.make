# Empty compiler generated dependencies file for pathsep_oracle.
# This may be replaced when dependencies are built.
