file(REMOVE_RECURSE
  "CMakeFiles/pathsep_oracle.dir/oracle/exact_oracle.cpp.o"
  "CMakeFiles/pathsep_oracle.dir/oracle/exact_oracle.cpp.o.d"
  "CMakeFiles/pathsep_oracle.dir/oracle/labels.cpp.o"
  "CMakeFiles/pathsep_oracle.dir/oracle/labels.cpp.o.d"
  "CMakeFiles/pathsep_oracle.dir/oracle/path_oracle.cpp.o"
  "CMakeFiles/pathsep_oracle.dir/oracle/path_oracle.cpp.o.d"
  "CMakeFiles/pathsep_oracle.dir/oracle/portals.cpp.o"
  "CMakeFiles/pathsep_oracle.dir/oracle/portals.cpp.o.d"
  "CMakeFiles/pathsep_oracle.dir/oracle/serialize.cpp.o"
  "CMakeFiles/pathsep_oracle.dir/oracle/serialize.cpp.o.d"
  "CMakeFiles/pathsep_oracle.dir/oracle/thorup_zwick.cpp.o"
  "CMakeFiles/pathsep_oracle.dir/oracle/thorup_zwick.cpp.o.d"
  "libpathsep_oracle.a"
  "libpathsep_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
