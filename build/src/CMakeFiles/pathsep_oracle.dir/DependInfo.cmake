
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oracle/exact_oracle.cpp" "src/CMakeFiles/pathsep_oracle.dir/oracle/exact_oracle.cpp.o" "gcc" "src/CMakeFiles/pathsep_oracle.dir/oracle/exact_oracle.cpp.o.d"
  "/root/repo/src/oracle/labels.cpp" "src/CMakeFiles/pathsep_oracle.dir/oracle/labels.cpp.o" "gcc" "src/CMakeFiles/pathsep_oracle.dir/oracle/labels.cpp.o.d"
  "/root/repo/src/oracle/path_oracle.cpp" "src/CMakeFiles/pathsep_oracle.dir/oracle/path_oracle.cpp.o" "gcc" "src/CMakeFiles/pathsep_oracle.dir/oracle/path_oracle.cpp.o.d"
  "/root/repo/src/oracle/portals.cpp" "src/CMakeFiles/pathsep_oracle.dir/oracle/portals.cpp.o" "gcc" "src/CMakeFiles/pathsep_oracle.dir/oracle/portals.cpp.o.d"
  "/root/repo/src/oracle/serialize.cpp" "src/CMakeFiles/pathsep_oracle.dir/oracle/serialize.cpp.o" "gcc" "src/CMakeFiles/pathsep_oracle.dir/oracle/serialize.cpp.o.d"
  "/root/repo/src/oracle/thorup_zwick.cpp" "src/CMakeFiles/pathsep_oracle.dir/oracle/thorup_zwick.cpp.o" "gcc" "src/CMakeFiles/pathsep_oracle.dir/oracle/thorup_zwick.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pathsep_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_separator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_treedec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
