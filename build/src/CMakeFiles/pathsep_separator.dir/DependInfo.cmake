
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/separator/dispatch.cpp" "src/CMakeFiles/pathsep_separator.dir/separator/dispatch.cpp.o" "gcc" "src/CMakeFiles/pathsep_separator.dir/separator/dispatch.cpp.o.d"
  "/root/repo/src/separator/greedy_paths.cpp" "src/CMakeFiles/pathsep_separator.dir/separator/greedy_paths.cpp.o" "gcc" "src/CMakeFiles/pathsep_separator.dir/separator/greedy_paths.cpp.o.d"
  "/root/repo/src/separator/grid_row.cpp" "src/CMakeFiles/pathsep_separator.dir/separator/grid_row.cpp.o" "gcc" "src/CMakeFiles/pathsep_separator.dir/separator/grid_row.cpp.o.d"
  "/root/repo/src/separator/path_separator.cpp" "src/CMakeFiles/pathsep_separator.dir/separator/path_separator.cpp.o" "gcc" "src/CMakeFiles/pathsep_separator.dir/separator/path_separator.cpp.o.d"
  "/root/repo/src/separator/planar_cycle.cpp" "src/CMakeFiles/pathsep_separator.dir/separator/planar_cycle.cpp.o" "gcc" "src/CMakeFiles/pathsep_separator.dir/separator/planar_cycle.cpp.o.d"
  "/root/repo/src/separator/tree_centroid.cpp" "src/CMakeFiles/pathsep_separator.dir/separator/tree_centroid.cpp.o" "gcc" "src/CMakeFiles/pathsep_separator.dir/separator/tree_centroid.cpp.o.d"
  "/root/repo/src/separator/treewidth_bag.cpp" "src/CMakeFiles/pathsep_separator.dir/separator/treewidth_bag.cpp.o" "gcc" "src/CMakeFiles/pathsep_separator.dir/separator/treewidth_bag.cpp.o.d"
  "/root/repo/src/separator/validate.cpp" "src/CMakeFiles/pathsep_separator.dir/separator/validate.cpp.o" "gcc" "src/CMakeFiles/pathsep_separator.dir/separator/validate.cpp.o.d"
  "/root/repo/src/separator/weighted.cpp" "src/CMakeFiles/pathsep_separator.dir/separator/weighted.cpp.o" "gcc" "src/CMakeFiles/pathsep_separator.dir/separator/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pathsep_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_treedec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
