file(REMOVE_RECURSE
  "libpathsep_separator.a"
)
