# Empty compiler generated dependencies file for pathsep_separator.
# This may be replaced when dependencies are built.
