file(REMOVE_RECURSE
  "CMakeFiles/pathsep_separator.dir/separator/dispatch.cpp.o"
  "CMakeFiles/pathsep_separator.dir/separator/dispatch.cpp.o.d"
  "CMakeFiles/pathsep_separator.dir/separator/greedy_paths.cpp.o"
  "CMakeFiles/pathsep_separator.dir/separator/greedy_paths.cpp.o.d"
  "CMakeFiles/pathsep_separator.dir/separator/grid_row.cpp.o"
  "CMakeFiles/pathsep_separator.dir/separator/grid_row.cpp.o.d"
  "CMakeFiles/pathsep_separator.dir/separator/path_separator.cpp.o"
  "CMakeFiles/pathsep_separator.dir/separator/path_separator.cpp.o.d"
  "CMakeFiles/pathsep_separator.dir/separator/planar_cycle.cpp.o"
  "CMakeFiles/pathsep_separator.dir/separator/planar_cycle.cpp.o.d"
  "CMakeFiles/pathsep_separator.dir/separator/tree_centroid.cpp.o"
  "CMakeFiles/pathsep_separator.dir/separator/tree_centroid.cpp.o.d"
  "CMakeFiles/pathsep_separator.dir/separator/treewidth_bag.cpp.o"
  "CMakeFiles/pathsep_separator.dir/separator/treewidth_bag.cpp.o.d"
  "CMakeFiles/pathsep_separator.dir/separator/validate.cpp.o"
  "CMakeFiles/pathsep_separator.dir/separator/validate.cpp.o.d"
  "CMakeFiles/pathsep_separator.dir/separator/weighted.cpp.o"
  "CMakeFiles/pathsep_separator.dir/separator/weighted.cpp.o.d"
  "libpathsep_separator.a"
  "libpathsep_separator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_separator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
