# Empty compiler generated dependencies file for pathsep_doubling.
# This may be replaced when dependencies are built.
