
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doubling/dimension.cpp" "src/CMakeFiles/pathsep_doubling.dir/doubling/dimension.cpp.o" "gcc" "src/CMakeFiles/pathsep_doubling.dir/doubling/dimension.cpp.o.d"
  "/root/repo/src/doubling/doubling_oracle.cpp" "src/CMakeFiles/pathsep_doubling.dir/doubling/doubling_oracle.cpp.o" "gcc" "src/CMakeFiles/pathsep_doubling.dir/doubling/doubling_oracle.cpp.o.d"
  "/root/repo/src/doubling/doubling_separator.cpp" "src/CMakeFiles/pathsep_doubling.dir/doubling/doubling_separator.cpp.o" "gcc" "src/CMakeFiles/pathsep_doubling.dir/doubling/doubling_separator.cpp.o.d"
  "/root/repo/src/doubling/nets.cpp" "src/CMakeFiles/pathsep_doubling.dir/doubling/nets.cpp.o" "gcc" "src/CMakeFiles/pathsep_doubling.dir/doubling/nets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pathsep_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
