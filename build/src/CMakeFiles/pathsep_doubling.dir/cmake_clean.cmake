file(REMOVE_RECURSE
  "CMakeFiles/pathsep_doubling.dir/doubling/dimension.cpp.o"
  "CMakeFiles/pathsep_doubling.dir/doubling/dimension.cpp.o.d"
  "CMakeFiles/pathsep_doubling.dir/doubling/doubling_oracle.cpp.o"
  "CMakeFiles/pathsep_doubling.dir/doubling/doubling_oracle.cpp.o.d"
  "CMakeFiles/pathsep_doubling.dir/doubling/doubling_separator.cpp.o"
  "CMakeFiles/pathsep_doubling.dir/doubling/doubling_separator.cpp.o.d"
  "CMakeFiles/pathsep_doubling.dir/doubling/nets.cpp.o"
  "CMakeFiles/pathsep_doubling.dir/doubling/nets.cpp.o.d"
  "libpathsep_doubling.a"
  "libpathsep_doubling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_doubling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
