file(REMOVE_RECURSE
  "libpathsep_doubling.a"
)
