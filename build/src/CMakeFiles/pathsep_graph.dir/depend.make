# Empty dependencies file for pathsep_graph.
# This may be replaced when dependencies are built.
