file(REMOVE_RECURSE
  "libpathsep_graph.a"
)
