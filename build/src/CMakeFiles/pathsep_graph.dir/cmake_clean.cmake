file(REMOVE_RECURSE
  "CMakeFiles/pathsep_graph.dir/graph/connectivity.cpp.o"
  "CMakeFiles/pathsep_graph.dir/graph/connectivity.cpp.o.d"
  "CMakeFiles/pathsep_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/pathsep_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/pathsep_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/pathsep_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/pathsep_graph.dir/graph/io.cpp.o"
  "CMakeFiles/pathsep_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/pathsep_graph.dir/graph/subgraph.cpp.o"
  "CMakeFiles/pathsep_graph.dir/graph/subgraph.cpp.o.d"
  "libpathsep_graph.a"
  "libpathsep_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
