file(REMOVE_RECURSE
  "CMakeFiles/pathsep_routing.dir/routing/simulator.cpp.o"
  "CMakeFiles/pathsep_routing.dir/routing/simulator.cpp.o.d"
  "CMakeFiles/pathsep_routing.dir/routing/tables.cpp.o"
  "CMakeFiles/pathsep_routing.dir/routing/tables.cpp.o.d"
  "libpathsep_routing.a"
  "libpathsep_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
