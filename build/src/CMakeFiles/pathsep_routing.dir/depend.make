# Empty dependencies file for pathsep_routing.
# This may be replaced when dependencies are built.
