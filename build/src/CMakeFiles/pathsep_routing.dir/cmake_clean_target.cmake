file(REMOVE_RECURSE
  "libpathsep_routing.a"
)
