# Empty compiler generated dependencies file for pathsep_hierarchy.
# This may be replaced when dependencies are built.
