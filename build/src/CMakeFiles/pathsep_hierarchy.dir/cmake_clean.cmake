file(REMOVE_RECURSE
  "CMakeFiles/pathsep_hierarchy.dir/hierarchy/decomposition_tree.cpp.o"
  "CMakeFiles/pathsep_hierarchy.dir/hierarchy/decomposition_tree.cpp.o.d"
  "libpathsep_hierarchy.a"
  "libpathsep_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
