file(REMOVE_RECURSE
  "libpathsep_hierarchy.a"
)
