file(REMOVE_RECURSE
  "libpathsep_smallworld.a"
)
