# Empty dependencies file for pathsep_smallworld.
# This may be replaced when dependencies are built.
