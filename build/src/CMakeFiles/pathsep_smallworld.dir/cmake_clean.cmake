file(REMOVE_RECURSE
  "CMakeFiles/pathsep_smallworld.dir/smallworld/augmentation.cpp.o"
  "CMakeFiles/pathsep_smallworld.dir/smallworld/augmentation.cpp.o.d"
  "CMakeFiles/pathsep_smallworld.dir/smallworld/greedy_router.cpp.o"
  "CMakeFiles/pathsep_smallworld.dir/smallworld/greedy_router.cpp.o.d"
  "CMakeFiles/pathsep_smallworld.dir/smallworld/kleinberg.cpp.o"
  "CMakeFiles/pathsep_smallworld.dir/smallworld/kleinberg.cpp.o.d"
  "CMakeFiles/pathsep_smallworld.dir/smallworld/landmarks.cpp.o"
  "CMakeFiles/pathsep_smallworld.dir/smallworld/landmarks.cpp.o.d"
  "CMakeFiles/pathsep_smallworld.dir/smallworld/nearest_contact.cpp.o"
  "CMakeFiles/pathsep_smallworld.dir/smallworld/nearest_contact.cpp.o.d"
  "libpathsep_smallworld.a"
  "libpathsep_smallworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_smallworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
