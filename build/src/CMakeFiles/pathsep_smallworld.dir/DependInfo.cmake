
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smallworld/augmentation.cpp" "src/CMakeFiles/pathsep_smallworld.dir/smallworld/augmentation.cpp.o" "gcc" "src/CMakeFiles/pathsep_smallworld.dir/smallworld/augmentation.cpp.o.d"
  "/root/repo/src/smallworld/greedy_router.cpp" "src/CMakeFiles/pathsep_smallworld.dir/smallworld/greedy_router.cpp.o" "gcc" "src/CMakeFiles/pathsep_smallworld.dir/smallworld/greedy_router.cpp.o.d"
  "/root/repo/src/smallworld/kleinberg.cpp" "src/CMakeFiles/pathsep_smallworld.dir/smallworld/kleinberg.cpp.o" "gcc" "src/CMakeFiles/pathsep_smallworld.dir/smallworld/kleinberg.cpp.o.d"
  "/root/repo/src/smallworld/landmarks.cpp" "src/CMakeFiles/pathsep_smallworld.dir/smallworld/landmarks.cpp.o" "gcc" "src/CMakeFiles/pathsep_smallworld.dir/smallworld/landmarks.cpp.o.d"
  "/root/repo/src/smallworld/nearest_contact.cpp" "src/CMakeFiles/pathsep_smallworld.dir/smallworld/nearest_contact.cpp.o" "gcc" "src/CMakeFiles/pathsep_smallworld.dir/smallworld/nearest_contact.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pathsep_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_separator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_treedec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
