file(REMOVE_RECURSE
  "libpathsep_sssp.a"
)
