
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sssp/alt.cpp" "src/CMakeFiles/pathsep_sssp.dir/sssp/alt.cpp.o" "gcc" "src/CMakeFiles/pathsep_sssp.dir/sssp/alt.cpp.o.d"
  "/root/repo/src/sssp/apsp.cpp" "src/CMakeFiles/pathsep_sssp.dir/sssp/apsp.cpp.o" "gcc" "src/CMakeFiles/pathsep_sssp.dir/sssp/apsp.cpp.o.d"
  "/root/repo/src/sssp/bfs.cpp" "src/CMakeFiles/pathsep_sssp.dir/sssp/bfs.cpp.o" "gcc" "src/CMakeFiles/pathsep_sssp.dir/sssp/bfs.cpp.o.d"
  "/root/repo/src/sssp/bidirectional.cpp" "src/CMakeFiles/pathsep_sssp.dir/sssp/bidirectional.cpp.o" "gcc" "src/CMakeFiles/pathsep_sssp.dir/sssp/bidirectional.cpp.o.d"
  "/root/repo/src/sssp/dijkstra.cpp" "src/CMakeFiles/pathsep_sssp.dir/sssp/dijkstra.cpp.o" "gcc" "src/CMakeFiles/pathsep_sssp.dir/sssp/dijkstra.cpp.o.d"
  "/root/repo/src/sssp/metrics.cpp" "src/CMakeFiles/pathsep_sssp.dir/sssp/metrics.cpp.o" "gcc" "src/CMakeFiles/pathsep_sssp.dir/sssp/metrics.cpp.o.d"
  "/root/repo/src/sssp/sp_tree.cpp" "src/CMakeFiles/pathsep_sssp.dir/sssp/sp_tree.cpp.o" "gcc" "src/CMakeFiles/pathsep_sssp.dir/sssp/sp_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pathsep_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
