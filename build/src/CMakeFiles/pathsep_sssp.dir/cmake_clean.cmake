file(REMOVE_RECURSE
  "CMakeFiles/pathsep_sssp.dir/sssp/alt.cpp.o"
  "CMakeFiles/pathsep_sssp.dir/sssp/alt.cpp.o.d"
  "CMakeFiles/pathsep_sssp.dir/sssp/apsp.cpp.o"
  "CMakeFiles/pathsep_sssp.dir/sssp/apsp.cpp.o.d"
  "CMakeFiles/pathsep_sssp.dir/sssp/bfs.cpp.o"
  "CMakeFiles/pathsep_sssp.dir/sssp/bfs.cpp.o.d"
  "CMakeFiles/pathsep_sssp.dir/sssp/bidirectional.cpp.o"
  "CMakeFiles/pathsep_sssp.dir/sssp/bidirectional.cpp.o.d"
  "CMakeFiles/pathsep_sssp.dir/sssp/dijkstra.cpp.o"
  "CMakeFiles/pathsep_sssp.dir/sssp/dijkstra.cpp.o.d"
  "CMakeFiles/pathsep_sssp.dir/sssp/metrics.cpp.o"
  "CMakeFiles/pathsep_sssp.dir/sssp/metrics.cpp.o.d"
  "CMakeFiles/pathsep_sssp.dir/sssp/sp_tree.cpp.o"
  "CMakeFiles/pathsep_sssp.dir/sssp/sp_tree.cpp.o.d"
  "libpathsep_sssp.a"
  "libpathsep_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
