# Empty dependencies file for pathsep_sssp.
# This may be replaced when dependencies are built.
