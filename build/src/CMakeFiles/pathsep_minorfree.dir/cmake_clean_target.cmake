file(REMOVE_RECURSE
  "libpathsep_minorfree.a"
)
