# Empty compiler generated dependencies file for pathsep_minorfree.
# This may be replaced when dependencies are built.
