file(REMOVE_RECURSE
  "CMakeFiles/pathsep_minorfree.dir/minorfree/almost_embedding.cpp.o"
  "CMakeFiles/pathsep_minorfree.dir/minorfree/almost_embedding.cpp.o.d"
  "CMakeFiles/pathsep_minorfree.dir/minorfree/apex_separator.cpp.o"
  "CMakeFiles/pathsep_minorfree.dir/minorfree/apex_separator.cpp.o.d"
  "CMakeFiles/pathsep_minorfree.dir/minorfree/vortex.cpp.o"
  "CMakeFiles/pathsep_minorfree.dir/minorfree/vortex.cpp.o.d"
  "CMakeFiles/pathsep_minorfree.dir/minorfree/vortex_path.cpp.o"
  "CMakeFiles/pathsep_minorfree.dir/minorfree/vortex_path.cpp.o.d"
  "libpathsep_minorfree.a"
  "libpathsep_minorfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_minorfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
