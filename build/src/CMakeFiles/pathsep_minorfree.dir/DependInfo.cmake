
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minorfree/almost_embedding.cpp" "src/CMakeFiles/pathsep_minorfree.dir/minorfree/almost_embedding.cpp.o" "gcc" "src/CMakeFiles/pathsep_minorfree.dir/minorfree/almost_embedding.cpp.o.d"
  "/root/repo/src/minorfree/apex_separator.cpp" "src/CMakeFiles/pathsep_minorfree.dir/minorfree/apex_separator.cpp.o" "gcc" "src/CMakeFiles/pathsep_minorfree.dir/minorfree/apex_separator.cpp.o.d"
  "/root/repo/src/minorfree/vortex.cpp" "src/CMakeFiles/pathsep_minorfree.dir/minorfree/vortex.cpp.o" "gcc" "src/CMakeFiles/pathsep_minorfree.dir/minorfree/vortex.cpp.o.d"
  "/root/repo/src/minorfree/vortex_path.cpp" "src/CMakeFiles/pathsep_minorfree.dir/minorfree/vortex_path.cpp.o" "gcc" "src/CMakeFiles/pathsep_minorfree.dir/minorfree/vortex_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pathsep_separator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_treedec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
