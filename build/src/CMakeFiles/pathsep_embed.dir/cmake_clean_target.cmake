file(REMOVE_RECURSE
  "libpathsep_embed.a"
)
