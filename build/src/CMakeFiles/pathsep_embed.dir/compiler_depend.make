# Empty compiler generated dependencies file for pathsep_embed.
# This may be replaced when dependencies are built.
