
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/dual.cpp" "src/CMakeFiles/pathsep_embed.dir/embed/dual.cpp.o" "gcc" "src/CMakeFiles/pathsep_embed.dir/embed/dual.cpp.o.d"
  "/root/repo/src/embed/faces.cpp" "src/CMakeFiles/pathsep_embed.dir/embed/faces.cpp.o" "gcc" "src/CMakeFiles/pathsep_embed.dir/embed/faces.cpp.o.d"
  "/root/repo/src/embed/rotation.cpp" "src/CMakeFiles/pathsep_embed.dir/embed/rotation.cpp.o" "gcc" "src/CMakeFiles/pathsep_embed.dir/embed/rotation.cpp.o.d"
  "/root/repo/src/embed/triangulate.cpp" "src/CMakeFiles/pathsep_embed.dir/embed/triangulate.cpp.o" "gcc" "src/CMakeFiles/pathsep_embed.dir/embed/triangulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pathsep_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
