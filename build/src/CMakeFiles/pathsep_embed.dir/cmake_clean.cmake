file(REMOVE_RECURSE
  "CMakeFiles/pathsep_embed.dir/embed/dual.cpp.o"
  "CMakeFiles/pathsep_embed.dir/embed/dual.cpp.o.d"
  "CMakeFiles/pathsep_embed.dir/embed/faces.cpp.o"
  "CMakeFiles/pathsep_embed.dir/embed/faces.cpp.o.d"
  "CMakeFiles/pathsep_embed.dir/embed/rotation.cpp.o"
  "CMakeFiles/pathsep_embed.dir/embed/rotation.cpp.o.d"
  "CMakeFiles/pathsep_embed.dir/embed/triangulate.cpp.o"
  "CMakeFiles/pathsep_embed.dir/embed/triangulate.cpp.o.d"
  "libpathsep_embed.a"
  "libpathsep_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
