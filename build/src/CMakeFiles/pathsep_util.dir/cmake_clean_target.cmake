file(REMOVE_RECURSE
  "libpathsep_util.a"
)
