file(REMOVE_RECURSE
  "CMakeFiles/pathsep_util.dir/util/args.cpp.o"
  "CMakeFiles/pathsep_util.dir/util/args.cpp.o.d"
  "CMakeFiles/pathsep_util.dir/util/rng.cpp.o"
  "CMakeFiles/pathsep_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/pathsep_util.dir/util/stats.cpp.o"
  "CMakeFiles/pathsep_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/pathsep_util.dir/util/table.cpp.o"
  "CMakeFiles/pathsep_util.dir/util/table.cpp.o.d"
  "CMakeFiles/pathsep_util.dir/util/timer.cpp.o"
  "CMakeFiles/pathsep_util.dir/util/timer.cpp.o.d"
  "libpathsep_util.a"
  "libpathsep_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
