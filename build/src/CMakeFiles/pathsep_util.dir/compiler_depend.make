# Empty compiler generated dependencies file for pathsep_util.
# This may be replaced when dependencies are built.
