file(REMOVE_RECURSE
  "libpathsep_treedec.a"
)
