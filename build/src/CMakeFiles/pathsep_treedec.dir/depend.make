# Empty dependencies file for pathsep_treedec.
# This may be replaced when dependencies are built.
