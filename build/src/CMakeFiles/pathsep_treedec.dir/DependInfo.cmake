
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/treedec/center.cpp" "src/CMakeFiles/pathsep_treedec.dir/treedec/center.cpp.o" "gcc" "src/CMakeFiles/pathsep_treedec.dir/treedec/center.cpp.o.d"
  "/root/repo/src/treedec/clique_weight.cpp" "src/CMakeFiles/pathsep_treedec.dir/treedec/clique_weight.cpp.o" "gcc" "src/CMakeFiles/pathsep_treedec.dir/treedec/clique_weight.cpp.o.d"
  "/root/repo/src/treedec/elimination.cpp" "src/CMakeFiles/pathsep_treedec.dir/treedec/elimination.cpp.o" "gcc" "src/CMakeFiles/pathsep_treedec.dir/treedec/elimination.cpp.o.d"
  "/root/repo/src/treedec/tree_decomposition.cpp" "src/CMakeFiles/pathsep_treedec.dir/treedec/tree_decomposition.cpp.o" "gcc" "src/CMakeFiles/pathsep_treedec.dir/treedec/tree_decomposition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pathsep_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pathsep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
