file(REMOVE_RECURSE
  "CMakeFiles/pathsep_treedec.dir/treedec/center.cpp.o"
  "CMakeFiles/pathsep_treedec.dir/treedec/center.cpp.o.d"
  "CMakeFiles/pathsep_treedec.dir/treedec/clique_weight.cpp.o"
  "CMakeFiles/pathsep_treedec.dir/treedec/clique_weight.cpp.o.d"
  "CMakeFiles/pathsep_treedec.dir/treedec/elimination.cpp.o"
  "CMakeFiles/pathsep_treedec.dir/treedec/elimination.cpp.o.d"
  "CMakeFiles/pathsep_treedec.dir/treedec/tree_decomposition.cpp.o"
  "CMakeFiles/pathsep_treedec.dir/treedec/tree_decomposition.cpp.o.d"
  "libpathsep_treedec.a"
  "libpathsep_treedec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsep_treedec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
