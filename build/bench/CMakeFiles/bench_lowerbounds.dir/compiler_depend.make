# Empty compiler generated dependencies file for bench_lowerbounds.
# This may be replaced when dependencies are built.
