file(REMOVE_RECURSE
  "CMakeFiles/bench_lowerbounds.dir/bench_lowerbounds.cpp.o"
  "CMakeFiles/bench_lowerbounds.dir/bench_lowerbounds.cpp.o.d"
  "bench_lowerbounds"
  "bench_lowerbounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lowerbounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
