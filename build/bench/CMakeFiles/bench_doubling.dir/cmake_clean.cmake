file(REMOVE_RECURSE
  "CMakeFiles/bench_doubling.dir/bench_doubling.cpp.o"
  "CMakeFiles/bench_doubling.dir/bench_doubling.cpp.o.d"
  "bench_doubling"
  "bench_doubling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_doubling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
