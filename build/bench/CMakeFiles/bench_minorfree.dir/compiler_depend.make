# Empty compiler generated dependencies file for bench_minorfree.
# This may be replaced when dependencies are built.
