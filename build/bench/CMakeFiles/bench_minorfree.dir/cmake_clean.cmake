file(REMOVE_RECURSE
  "CMakeFiles/bench_minorfree.dir/bench_minorfree.cpp.o"
  "CMakeFiles/bench_minorfree.dir/bench_minorfree.cpp.o.d"
  "bench_minorfree"
  "bench_minorfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minorfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
