file(REMOVE_RECURSE
  "CMakeFiles/bench_separator.dir/bench_separator.cpp.o"
  "CMakeFiles/bench_separator.dir/bench_separator.cpp.o.d"
  "bench_separator"
  "bench_separator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_separator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
