file(REMOVE_RECURSE
  "CMakeFiles/bench_smallworld.dir/bench_smallworld.cpp.o"
  "CMakeFiles/bench_smallworld.dir/bench_smallworld.cpp.o.d"
  "bench_smallworld"
  "bench_smallworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smallworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
