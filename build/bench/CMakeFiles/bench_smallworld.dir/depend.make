# Empty dependencies file for bench_smallworld.
# This may be replaced when dependencies are built.
