# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_connectivity_subgraph[1]_include.cmake")
include("/root/repo/build/tests/test_sssp[1]_include.cmake")
include("/root/repo/build/tests/test_embed[1]_include.cmake")
include("/root/repo/build/tests/test_treedec[1]_include.cmake")
include("/root/repo/build/tests/test_separator[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_portals[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_smallworld[1]_include.cmake")
include("/root/repo/build/tests/test_doubling[1]_include.cmake")
include("/root/repo/build/tests/test_weighted_separator[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_lowerbound_properties[1]_include.cmake")
include("/root/repo/build/tests/test_clique_weight[1]_include.cmake")
include("/root/repo/build/tests/test_minorfree[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
