# Empty compiler generated dependencies file for test_doubling.
# This may be replaced when dependencies are built.
