file(REMOVE_RECURSE
  "CMakeFiles/test_doubling.dir/test_doubling.cpp.o"
  "CMakeFiles/test_doubling.dir/test_doubling.cpp.o.d"
  "test_doubling"
  "test_doubling.pdb"
  "test_doubling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doubling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
