file(REMOVE_RECURSE
  "CMakeFiles/test_separator.dir/test_separator.cpp.o"
  "CMakeFiles/test_separator.dir/test_separator.cpp.o.d"
  "test_separator"
  "test_separator.pdb"
  "test_separator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_separator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
