# Empty compiler generated dependencies file for test_separator.
# This may be replaced when dependencies are built.
