file(REMOVE_RECURSE
  "CMakeFiles/test_portals.dir/test_portals.cpp.o"
  "CMakeFiles/test_portals.dir/test_portals.cpp.o.d"
  "test_portals"
  "test_portals.pdb"
  "test_portals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_portals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
