# Empty compiler generated dependencies file for test_portals.
# This may be replaced when dependencies are built.
