file(REMOVE_RECURSE
  "CMakeFiles/test_connectivity_subgraph.dir/test_connectivity_subgraph.cpp.o"
  "CMakeFiles/test_connectivity_subgraph.dir/test_connectivity_subgraph.cpp.o.d"
  "test_connectivity_subgraph"
  "test_connectivity_subgraph.pdb"
  "test_connectivity_subgraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_connectivity_subgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
