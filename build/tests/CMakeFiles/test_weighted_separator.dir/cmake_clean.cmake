file(REMOVE_RECURSE
  "CMakeFiles/test_weighted_separator.dir/test_weighted_separator.cpp.o"
  "CMakeFiles/test_weighted_separator.dir/test_weighted_separator.cpp.o.d"
  "test_weighted_separator"
  "test_weighted_separator.pdb"
  "test_weighted_separator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weighted_separator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
