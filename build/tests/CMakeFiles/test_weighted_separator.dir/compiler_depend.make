# Empty compiler generated dependencies file for test_weighted_separator.
# This may be replaced when dependencies are built.
