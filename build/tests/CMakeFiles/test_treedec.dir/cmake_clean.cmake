file(REMOVE_RECURSE
  "CMakeFiles/test_treedec.dir/test_treedec.cpp.o"
  "CMakeFiles/test_treedec.dir/test_treedec.cpp.o.d"
  "test_treedec"
  "test_treedec.pdb"
  "test_treedec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_treedec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
