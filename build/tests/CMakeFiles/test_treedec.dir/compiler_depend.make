# Empty compiler generated dependencies file for test_treedec.
# This may be replaced when dependencies are built.
