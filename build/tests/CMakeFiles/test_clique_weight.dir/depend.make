# Empty dependencies file for test_clique_weight.
# This may be replaced when dependencies are built.
