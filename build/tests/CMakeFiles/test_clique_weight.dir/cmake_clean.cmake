file(REMOVE_RECURSE
  "CMakeFiles/test_clique_weight.dir/test_clique_weight.cpp.o"
  "CMakeFiles/test_clique_weight.dir/test_clique_weight.cpp.o.d"
  "test_clique_weight"
  "test_clique_weight.pdb"
  "test_clique_weight[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clique_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
