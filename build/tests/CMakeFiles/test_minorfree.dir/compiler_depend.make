# Empty compiler generated dependencies file for test_minorfree.
# This may be replaced when dependencies are built.
