file(REMOVE_RECURSE
  "CMakeFiles/test_minorfree.dir/test_minorfree.cpp.o"
  "CMakeFiles/test_minorfree.dir/test_minorfree.cpp.o.d"
  "test_minorfree"
  "test_minorfree.pdb"
  "test_minorfree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minorfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
