file(REMOVE_RECURSE
  "CMakeFiles/test_lowerbound_properties.dir/test_lowerbound_properties.cpp.o"
  "CMakeFiles/test_lowerbound_properties.dir/test_lowerbound_properties.cpp.o.d"
  "test_lowerbound_properties"
  "test_lowerbound_properties.pdb"
  "test_lowerbound_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowerbound_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
