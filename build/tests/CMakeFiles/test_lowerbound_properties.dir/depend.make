# Empty dependencies file for test_lowerbound_properties.
# This may be replaced when dependencies are built.
