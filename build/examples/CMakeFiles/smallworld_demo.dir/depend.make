# Empty dependencies file for smallworld_demo.
# This may be replaced when dependencies are built.
