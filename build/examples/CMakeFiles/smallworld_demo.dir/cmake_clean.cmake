file(REMOVE_RECURSE
  "CMakeFiles/smallworld_demo.dir/smallworld_demo.cpp.o"
  "CMakeFiles/smallworld_demo.dir/smallworld_demo.cpp.o.d"
  "smallworld_demo"
  "smallworld_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smallworld_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
