# Empty compiler generated dependencies file for p2p_object_location.
# This may be replaced when dependencies are built.
