file(REMOVE_RECURSE
  "CMakeFiles/p2p_object_location.dir/p2p_object_location.cpp.o"
  "CMakeFiles/p2p_object_location.dir/p2p_object_location.cpp.o.d"
  "p2p_object_location"
  "p2p_object_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_object_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
