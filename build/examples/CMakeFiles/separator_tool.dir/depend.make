# Empty dependencies file for separator_tool.
# This may be replaced when dependencies are built.
