file(REMOVE_RECURSE
  "CMakeFiles/separator_tool.dir/separator_tool.cpp.o"
  "CMakeFiles/separator_tool.dir/separator_tool.cpp.o.d"
  "separator_tool"
  "separator_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/separator_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
