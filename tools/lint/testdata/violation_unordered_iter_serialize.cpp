// Seeded violation for the `unordered-iter` rule: the filename contains
// "serialize", so unordered containers are banned here; exactly one finding.
// (Never compiled — scanner fixture for tests/test_lint.cpp.)
#include <cstdint>
#include <unordered_map>  // the one seeded violation
#include <vector>

std::vector<std::uint8_t> serialize_counts();
