// Seeded violation for the `dcheck-side-effect` rule: exactly one finding.
// (Never compiled — scanner fixture for tests/test_lint.cpp.)
void advance(int& cursor, int limit) {
  PATHSEP_DCHECK(++cursor < limit, "cursor ran past the end");  // seeded
}
