// Seeded violation for the `rand-source` rule: exactly one finding.
// (Never compiled — scanner fixture for tests/test_lint.cpp.)
#include <random>

int nondeterministic_seed() {
  std::random_device entropy;  // the one seeded violation
  return static_cast<int>(entropy());
}
