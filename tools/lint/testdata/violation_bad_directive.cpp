// Seeded violation for the `bad-directive` rule: exactly one finding.
// (Never compiled — scanner fixture for tests/test_lint.cpp.)
// pathsep-lint: allow(not-a-real-rule)
int typoed_suppression() { return 0; }
