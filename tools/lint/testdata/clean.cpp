// Clean fixture: every rule's trigger appears only in positions the scanner
// must NOT flag — comments, string literals, suppressed lines, rule-exempt
// spellings. Zero findings expected.
// (Never compiled — scanner fixture for tests/test_lint.cpp.)
// pathsep-lint: hot-path
#include <string>

// Mentions in comments never count: rand(), std::random_device, new,
// std::mutex, unordered_map, PATHSEP_DCHECK(++x).
const char* kProse =
    "string literals never count: rand() std::mutex new unordered_map";

// Deleted functions and operator declarations are not heap traffic.
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
  void* operator new(unsigned long) = delete;
};

// A deliberate, reviewed allocation on a cold setup path inside a hot-path
// file is suppressed inline and documented:
int* setup_buffer() {
  return new int[8];  // pathsep-lint: allow(hot-path-alloc) cold setup path
}

// Identifiers merely *containing* trigger words are fine (token scan):
int operand_randomized_count = 0;
void make_shared_prefix_table();
