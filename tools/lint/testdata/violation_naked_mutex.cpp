// Seeded violation for the `naked-mutex` rule: exactly one finding.
// (Never compiled — scanner fixture for tests/test_lint.cpp.)
#include <mutex>

struct UnprovableState {
  std::mutex mutex;  // the one seeded violation
  int value = 0;
};
