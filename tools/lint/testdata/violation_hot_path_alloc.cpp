// Seeded violation for the `hot-path-alloc` rule: exactly one finding.
// (Never compiled — scanner fixture for tests/test_lint.cpp.)
// pathsep-lint: hot-path
int* allocate_in_inner_loop() {
  return new int[64];  // the one seeded violation
}
