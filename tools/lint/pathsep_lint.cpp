// pathsep_lint — the repo-specific static rules no off-the-shelf checker
// knows about. Token-level scan (comments and string literals are lexed and
// skipped, so a mention in prose never trips a rule) over src/ bench/
// examples/, run as the `lint` step of scripts/check.sh and as CTest label
// `lint` (tests/test_lint.cpp drives it over seeded-violation fixtures).
//
// Rules (ids as printed in diagnostics):
//
//   rand-source         rand()/srand()/std::random_device/wall-clock seeding
//                       outside util/rng. All randomness flows through
//                       util::Rng so every run is reproducible from a seed.
//   unordered-iter      unordered containers in serialization/digest paths
//                       (file named *serialize*/*digest*, or tagged
//                       `deterministic`). Hash iteration order would leak
//                       into bytes that must be identical across runs,
//                       platforms, and thread counts.
//   hot-path-alloc      explicit heap allocation (new/malloc/make_unique/…)
//                       in files tagged `hot-path`. Query serving and the
//                       Dijkstra/flow inner loops are zero-allocation by
//                       contract (epoch-reset workspaces/arenas).
//   dcheck-side-effect  ++/--/assignment inside PATHSEP_DCHECK/PATHSEP_AUDIT
//                       arguments. Those macros compile out (NDEBUG /
//                       audits off), so a side effect there changes behavior
//                       between build modes.
//   naked-mutex         std::mutex / std::lock_guard / std::unique_lock /
//                       std::condition_variable etc. outside
//                       util/thread_annotations.hpp. Locking goes through
//                       util::Mutex/LockGuard/UniqueLock/CondVar so Clang
//                       Thread Safety Analysis sees every acquisition.
//   bad-directive       a `pathsep-lint:` comment the tool cannot parse
//                       (typo'd rule names must not silently disable a rule).
//
// In-source controls (comments):
//   // pathsep-lint: hot-path            tag the file for hot-path-alloc
//   // pathsep-lint: deterministic       tag the file for unordered-iter
//   // pathsep-lint: allow(rule[, ...])  suppress on this and the next line
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Token {
  enum class Kind { kIdent, kPunct };
  Kind kind;
  std::string text;
  std::size_t line;
};

struct FileScan {
  std::vector<Token> tokens;
  std::set<std::string> tags;  ///< file-level: "hot-path", "deterministic"
  /// line -> rules suppressed on that line and the next.
  std::map<std::size_t, std::set<std::string>> allows;
  std::vector<std::pair<std::size_t, std::string>> bad_directives;
};

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

const std::set<std::string> kKnownRules = {
    "rand-source",   "unordered-iter",     "hot-path-alloc",
    "dcheck-side-effect", "naked-mutex",   "bad-directive"};

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Parses one comment's text for a `pathsep-lint:` directive.
void parse_directive(std::string_view comment, std::size_t line,
                     FileScan& scan) {
  const std::size_t at = comment.find("pathsep-lint:");
  if (at == std::string_view::npos) return;
  std::string rest = trim(comment.substr(at + std::string("pathsep-lint:").size()));
  if (rest.rfind("allow(", 0) == 0) {
    const std::size_t close = rest.find(')');
    if (close == std::string::npos) {
      scan.bad_directives.emplace_back(line, "unterminated allow(...)");
      return;
    }
    std::stringstream list(rest.substr(6, close - 6));
    std::string rule;
    bool any = false, bad = false;
    while (std::getline(list, rule, ',')) {
      rule = trim(rule);
      if (rule.empty() || kKnownRules.count(rule) == 0) {
        scan.bad_directives.emplace_back(line, "unknown rule '" + rule + "'");
        bad = true;
        continue;
      }
      scan.allows[line].insert(rule);
      any = true;
    }
    if (!any && !bad)
      scan.bad_directives.emplace_back(line, "empty allow(...)");
    return;
  }
  // Tags may carry trailing prose ("hot-path — zero allocation ...").
  std::string tag = rest.substr(0, rest.find_first_of(" \t"));
  if (tag == "hot-path" || tag == "deterministic") {
    scan.tags.insert(tag);
    return;
  }
  scan.bad_directives.emplace_back(line, "unknown directive '" + tag + "'");
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators, longest-match-first, so `<=` is never read
/// as `<` then `=` and `==` never contributes a spurious assignment.
const char* kPuncts[] = {"<<=", ">>=", "...", "->*", "::", "->", "++", "--",
                         "<<",  ">>",  "<=",  ">=",  "==", "!=", "&&", "||",
                         "+=",  "-=",  "*=",  "/=",  "%=", "&=", "|=", "^="};

FileScan lex_file(const std::string& content) {
  FileScan scan;
  std::size_t i = 0, line = 1;
  const std::size_t n = content.size();
  auto peek = [&](std::size_t off) -> char {
    return i + off < n ? content[i + off] : '\0';
  };
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '/' && peek(1) == '/') {
      const std::size_t end = content.find('\n', i);
      const std::size_t stop = end == std::string::npos ? n : end;
      parse_directive(std::string_view(content).substr(i, stop - i), line,
                      scan);
      i = stop;
    } else if (c == '/' && peek(1) == '*') {
      const std::size_t end = content.find("*/", i + 2);
      const std::size_t stop = end == std::string::npos ? n : end + 2;
      const std::string_view body =
          std::string_view(content).substr(i, stop - i);
      parse_directive(body, line, scan);
      line += static_cast<std::size_t>(
          std::count(body.begin(), body.end(), '\n'));
      i = stop;
    } else if (c == 'R' && peek(1) == '"') {
      // Raw string literal: R"delim( ... )delim"
      std::size_t d = i + 2;
      while (d < n && content[d] != '(') ++d;
      const std::string delim = ")" + content.substr(i + 2, d - (i + 2)) + "\"";
      const std::size_t end = content.find(delim, d);
      const std::size_t stop = end == std::string::npos ? n : end + delim.size();
      line += static_cast<std::size_t>(
          std::count(content.begin() + static_cast<std::ptrdiff_t>(i),
                     content.begin() + static_cast<std::ptrdiff_t>(stop), '\n'));
      i = stop;
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\') ++i;
        if (i < n && content[i] == '\n') ++line;
        ++i;
      }
      ++i;  // closing quote
    } else if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(content[j])) ++j;
      scan.tokens.push_back(
          {Token::Kind::kIdent, content.substr(i, j - i), line});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;  // pp-number; close enough for these rules
      while (j < n && (ident_char(content[j]) || content[j] == '.' ||
                       content[j] == '\''))
        ++j;
      i = j;
    } else {
      bool matched = false;
      for (const char* p : kPuncts) {
        const std::size_t len = std::string_view(p).size();
        if (content.compare(i, len, p) == 0) {
          scan.tokens.push_back({Token::Kind::kPunct, p, line});
          i += len;
          matched = true;
          break;
        }
      }
      if (!matched) {
        scan.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
        ++i;
      }
    }
  }
  return scan;
}

bool suppressed(const FileScan& scan, const std::string& rule,
                std::size_t line) {
  for (const std::size_t at : {line, line == 0 ? 0 : line - 1}) {
    const auto it = scan.allows.find(at);
    if (it != scan.allows.end() && it->second.count(rule)) return true;
  }
  return false;
}

void add_finding(std::vector<Finding>& out, const FileScan& scan,
                 const std::string& file, std::size_t line,
                 const std::string& rule, std::string message) {
  if (suppressed(scan, rule, line)) return;
  out.push_back({file, line, rule, std::move(message)});
}

std::string filename_of(const std::string& path) {
  return fs::path(path).filename().string();
}

bool path_contains(const std::string& path, std::string_view needle) {
  return fs::path(path).generic_string().find(needle) != std::string::npos;
}

void run_rules(const std::string& file, const FileScan& scan,
               std::vector<Finding>& out) {
  for (const auto& [line, what] : scan.bad_directives)
    out.push_back({file, line, "bad-directive", what});

  const std::string name = filename_of(file);
  const bool rng_exempt = path_contains(file, "util/rng");
  const bool annotations_header =
      path_contains(file, "util/thread_annotations.hpp");
  const bool deterministic_scope =
      scan.tags.count("deterministic") != 0 ||
      name.find("serialize") != std::string::npos ||
      name.find("digest") != std::string::npos;
  const bool hot_path = scan.tags.count("hot-path") != 0;

  static const std::set<std::string> kRandIdents = {
      "rand", "srand", "rand_r", "drand48", "random_device", "system_clock"};
  static const std::set<std::string> kUnorderedIdents = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static const std::set<std::string> kAllocIdents = {
      "malloc", "calloc", "realloc", "strdup", "make_unique", "make_shared"};
  static const std::set<std::string> kMutexIdents = {
      "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex", "shared_timed_mutex", "lock_guard", "unique_lock",
      "scoped_lock", "shared_lock", "condition_variable",
      "condition_variable_any"};
  static const std::set<std::string> kAssignPuncts = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};

  const std::vector<Token>& toks = scan.tokens;
  // dcheck-side-effect bookkeeping: >0 while inside the argument list of a
  // PATHSEP_DCHECK/PATHSEP_AUDIT invocation, tracking paren depth.
  int check_depth = 0;

  for (std::size_t t = 0; t < toks.size(); ++t) {
    const Token& tok = toks[t];
    const bool is_ident = tok.kind == Token::Kind::kIdent;
    auto prev = [&](std::size_t back) -> const Token* {
      return t >= back ? &toks[t - back] : nullptr;
    };

    if (check_depth > 0) {
      if (tok.text == "(") {
        ++check_depth;
      } else if (tok.text == ")") {
        if (--check_depth == 1) check_depth = 0;
      } else if (tok.text == "++" || tok.text == "--" ||
                 (kAssignPuncts.count(tok.text) &&
                  !(prev(1) && prev(1)->text == "["))) {
        add_finding(out, scan, file, tok.line, "dcheck-side-effect",
                    "'" + tok.text +
                        "' inside PATHSEP_DCHECK/PATHSEP_AUDIT — the "
                        "expression is compiled out under NDEBUG/audits-off, "
                        "so this side effect differs between build modes");
      }
    }
    if (is_ident &&
        (tok.text == "PATHSEP_DCHECK" || tok.text == "PATHSEP_AUDIT") &&
        t + 1 < toks.size() && toks[t + 1].text == "(") {
      check_depth = 1;  // the '(' token will bump it to 2
    }

    if (is_ident && !rng_exempt && kRandIdents.count(tok.text)) {
      add_finding(out, scan, file, tok.line, "rand-source",
                  "'" + tok.text +
                      "' outside util/rng — all randomness must flow through "
                      "util::Rng so runs are reproducible from a seed");
    }

    if (is_ident && deterministic_scope && kUnorderedIdents.count(tok.text)) {
      add_finding(out, scan, file, tok.line, "unordered-iter",
                  "'" + tok.text +
                      "' in a serialization/digest path — hash iteration "
                      "order is not deterministic across runs; use a sorted "
                      "container or sort before emitting bytes");
    }

    if (hot_path) {
      const Token* p1 = prev(1);
      const bool operator_decl = p1 && p1->text == "operator";
      const bool deleted_fn = p1 && p1->text == "=";
      if (is_ident && tok.text == "new" && !operator_decl) {
        add_finding(out, scan, file, tok.line, "hot-path-alloc",
                    "'new' in a hot-path file — serving and inner loops are "
                    "zero-allocation by contract; use the workspace/arena");
      } else if (is_ident && tok.text == "delete" && !operator_decl &&
                 !deleted_fn) {
        add_finding(out, scan, file, tok.line, "hot-path-alloc",
                    "'delete' in a hot-path file — nothing may be heap-"
                    "allocated here in the first place");
      } else if (is_ident && kAllocIdents.count(tok.text)) {
        add_finding(out, scan, file, tok.line, "hot-path-alloc",
                    "'" + tok.text +
                        "' in a hot-path file — serving and inner loops are "
                        "zero-allocation by contract; use the workspace/arena");
      }
    }

    if (is_ident && !annotations_header && kMutexIdents.count(tok.text)) {
      const Token* p1 = prev(1);
      const Token* p2 = prev(2);
      if (p1 && p1->text == "::" && p2 && p2->text == "std") {
        add_finding(out, scan, file, tok.line, "naked-mutex",
                    "'std::" + tok.text +
                        "' outside util/thread_annotations.hpp — use "
                        "util::Mutex/LockGuard/UniqueLock/CondVar so Clang "
                        "Thread Safety Analysis sees the acquisition");
      }
    }
  }
}

bool scannable(const fs::path& p) {
  static const std::set<std::string> kExts = {".cpp", ".cc", ".cxx", ".hpp",
                                              ".h", ".hh", ".inl"};
  return kExts.count(p.extension().string()) != 0;
}

int list_rules() {
  std::cout << "rand-source         no rand()/std::random_device/wall-clock "
               "seeding outside util/rng\n"
            << "unordered-iter      no unordered containers in "
               "serialization/digest paths\n"
            << "hot-path-alloc      no explicit heap allocation in files "
               "tagged 'pathsep-lint: hot-path'\n"
            << "dcheck-side-effect  no ++/--/assignment inside "
               "PATHSEP_DCHECK/PATHSEP_AUDIT\n"
            << "naked-mutex         no std::mutex family outside "
               "util/thread_annotations.hpp\n"
            << "bad-directive       every 'pathsep-lint:' comment must parse\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    if (arg == "--list-rules") return list_rules();
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pathsep_lint [--list-rules] <file-or-dir>...\n";
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "pathsep_lint: unknown option " << arg << "\n";
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: pathsep_lint [--list-rules] <file-or-dir>...\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec))
        if (it->is_regular_file() && scannable(it->path()))
          files.push_back(it->path().generic_string());
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(fs::path(root).generic_string());
    } else {
      std::cerr << "pathsep_lint: cannot read " << root << "\n";
      return 2;
    }
    if (ec) {
      std::cerr << "pathsep_lint: error walking " << root << ": "
                << ec.message() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "pathsep_lint: cannot open " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const FileScan scan = lex_file(buf.str());
    run_rules(file, scan, findings);
  }

  for (const Finding& f : findings)
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  if (findings.empty()) {
    std::cout << "pathsep_lint: clean (" << files.size() << " files)\n";
    return 0;
  }
  std::cout << "pathsep_lint: " << findings.size() << " finding(s) in "
            << files.size() << " files\n";
  return 1;
}
