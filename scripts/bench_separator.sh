#!/usr/bin/env bash
# Builds and runs the separator-backend benchmark (bench/bench_separator.cpp)
# and records the results as BENCH_separator.json at the repository root:
# E1/E1b separator quality, the E16 flow-vs-structural Pareto comparison on a
# perturbed grid, and E16b downstream label bytes per backend. Extra
# arguments are forwarded to the binary, e.g.:
#
#   scripts/bench_separator.sh                        # acceptance-scale run
#   scripts/bench_separator.sh --road-side=80 --label-side=40   # quick smoke
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

cmake --preset release
cmake --build build -j "$JOBS" --target bench_separator
./build/bench/bench_separator --out=BENCH_separator.json "$@"
