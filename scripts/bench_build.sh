#!/usr/bin/env bash
# Builds and runs the construction-throughput benchmark (bench/bench_build.cpp)
# and records the results as BENCH_build.json at the repository root. Extra
# arguments are forwarded to the binary, e.g.:
#
#   scripts/bench_build.sh                         # default sizes and threads
#   scripts/bench_build.sh --grid-side=128 --threads=1,4
#   scripts/bench_build.sh --big-grid-side=1024    # add the 1M-vertex record
#
# --quick runs a small smoke configuration — tiny instances, 1 thread vs the
# machine's default thread count, digests required identical, results to a
# temp file so BENCH_build.json is not clobbered — and is what scripts/check.sh
# uses to gate scheduling regressions that break determinism.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

if [ "${1:-}" = "--quick" ]; then
  shift
  OUT=$(mktemp /tmp/bench_build_quick.XXXXXX.json)
  trap 'rm -f "$OUT"' EXIT
  MAX_THREADS=$(nproc 2>/dev/null || echo 8)
  [ "$MAX_THREADS" -lt 2 ] && MAX_THREADS=8  # exercise the pool path anyway
  cmake --preset release
  cmake --build build -j "$JOBS" --target bench_build
  ./build/bench/bench_build --out="$OUT" --grid-side=48 --planar-n=2500 \
      --threads="1,$MAX_THREADS" --require-equal-digests "$@"
  echo "bench_build --quick: digests identical across 1 and $MAX_THREADS threads"
  exit 0
fi

cmake --preset release
cmake --build build -j "$JOBS" --target bench_build
./build/bench/bench_build --out=BENCH_build.json "$@"
