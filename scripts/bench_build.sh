#!/usr/bin/env bash
# Builds and runs the construction-throughput benchmark (bench/bench_build.cpp)
# and records the results as BENCH_build.json at the repository root. Extra
# arguments are forwarded to the binary, e.g.:
#
#   scripts/bench_build.sh                         # default sizes and threads
#   scripts/bench_build.sh --grid-side=128 --threads=1,4
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

cmake --preset release
cmake --build build -j "$JOBS" --target bench_build
./build/bench/bench_build --out=BENCH_build.json "$@"
