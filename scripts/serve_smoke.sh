#!/usr/bin/env bash
# Localhost round-trip smoke for the network serving path: start
# examples/query_server --serve on an ephemeral port, drive it with
# `bench_service --loadgen` over the length-prefixed binary protocol, and
# require the answer digest to match a locally built oracle (--verify).
# Exercises the epoll front-end, the frame codec, and the sharded engine end
# to end. Environment: BUILD (binary dir, default build), SIDE (grid side,
# default 40), QUERIES (default 20000).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
SIDE=${SIDE:-40}
QUERIES=${QUERIES:-20000}

server="$BUILD/examples/query_server"
loadgen="$BUILD/bench/bench_service"
if [ ! -x "$server" ] || [ ! -x "$loadgen" ]; then
  echo "serve_smoke: build the query_server and bench_service targets first" >&2
  exit 1
fi

log=$(mktemp)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -f "$log"
}
trap cleanup EXIT

# --serve-duration is a watchdog, not the test length: the loadgen finishes
# in well under a second and the trap kills the server immediately after.
"$server" --side="$SIDE" --serve=0 --serve-duration=120 >"$log" 2>&1 &
server_pid=$!

# The server prints (and flushes) "listening on 127.0.0.1:PORT" once bound;
# poll the log for the ephemeral port instead of racing the bind.
port=""
for _ in $(seq 1 300); do
  port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
  [ -n "$port" ] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "serve_smoke: server exited before listening" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "serve_smoke: server never reported a listening port" >&2
  cat "$log" >&2
  exit 1
fi

"$loadgen" --loadgen --connect="127.0.0.1:$port" --side="$SIDE" \
  --queries="$QUERIES" --verify

echo "serve_smoke: OK (port $port, $QUERIES queries digest-verified)"
