#!/usr/bin/env bash
# Pre-merge correctness gate: the full build/test matrix described in
# README.md ("Correctness tooling"). Run from the repository root:
#
#   scripts/check.sh              # whole matrix
#   scripts/check.sh release tidy # a subset of the steps
#
# Steps:
#   release  strict-warnings (-Werror) build, ctest twice — plain and with
#            PATHSEP_AUDIT=1 so every deep invariant validator runs
#   asan     AddressSanitizer + UndefinedBehaviorSanitizer build, full ctest
#   tsan     ThreadSanitizer build, ctest -L 'service|parallel|obs|flow' (the
#            concurrent query layer, the parallel construction pipeline, the
#            observability layer's cross-thread recording, and the flow
#            backend's thread-count determinism)
#   obsoff   PATHSEP_OBS_DISABLED build with -Werror — proves every
#            instrumentation call site compiles out cleanly — plus
#            ctest -L obs (the obs suite adapts to the compiled-out mode)
#   bench    bench_build --quick determinism smoke: tiny instances, 1 thread
#            vs the machine default, exits non-zero if any thread count
#            changes the label digest (catches scheduling regressions that
#            break the byte-identical-labels guarantee)
#   smoke    localhost serving round-trip: query_server --serve on an
#            ephemeral port driven by bench_service --loadgen --verify, so
#            the epoll front-end + wire codec + sharded engine answer real
#            socket traffic with digest-checked results
#            (scripts/serve_smoke.sh)
#   tsa      Clang Thread Safety Analysis: clang++ build with -Wthread-safety
#            -Werror=thread-safety-analysis over the PATHSEP_GUARDED_BY /
#            PATHSEP_REQUIRES annotations (util/thread_annotations.hpp) —
#            proves the locking contract on every path at compile time
#            (skipped with a notice when clang++ is not installed)
#   lint     builds tools/lint/pathsep_lint and runs it over src/ bench/
#            examples/ (repo-specific rules: rand-source, unordered-iter,
#            hot-path-alloc, dcheck-side-effect, naked-mutex); any finding
#            fails the gate
#   tidy     clang-tidy over src/, tests/ and examples/ via the `tidy`
#            target (no-op with a notice when clang-tidy is not installed)
#
# Every step uses its own CMake preset/binary dir (see CMakePresets.json),
# so the matrix never invalidates an incremental developer build other than
# `build/` itself (the release preset owns that directory).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
STEPS=("$@")
[ ${#STEPS[@]} -eq 0 ] && STEPS=(release asan tsan obsoff tsa bench smoke lint tidy)

banner() { printf '\n=== %s ===\n' "$*"; }

want() {
  local step
  for step in "${STEPS[@]}"; do [ "$step" = "$1" ] && return 0; done
  return 1
}

if want release; then
  banner "release: -Werror build + ctest (plain, then PATHSEP_AUDIT=1)"
  cmake --preset release
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
  PATHSEP_AUDIT=1 ctest --test-dir build --output-on-failure -j "$JOBS"
fi

if want asan; then
  banner "asan: AddressSanitizer + UBSan build + full ctest"
  cmake --preset asan-ubsan
  cmake --build build-asan-ubsan -j "$JOBS"
  ctest --test-dir build-asan-ubsan --output-on-failure -j "$JOBS"
fi

if want tsan; then
  banner "tsan: ThreadSanitizer build + ctest -L 'service|parallel|obs|flow'"
  cmake --preset tsan
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L 'service|parallel|obs|flow'
fi

if want obsoff; then
  banner "obsoff: PATHSEP_OBS_DISABLED -Werror build + ctest -L obs"
  cmake --preset obs-off
  cmake --build build-obs-off -j "$JOBS"
  ctest --test-dir build-obs-off --output-on-failure -j "$JOBS" -L obs
fi

if want tsa; then
  banner "tsa: Clang Thread Safety Analysis (-Wthread-safety as errors)"
  if command -v clang++ >/dev/null 2>&1; then
    cmake --preset tsa
    cmake --build build-tsa -j "$JOBS"
  else
    echo "clang++ not found — tsa step skipped (annotations still compile"          "to nothing under GCC; the release step proves that)"
  fi
fi

if want bench; then
  banner "bench: bench_build --quick determinism smoke (digests across threads)"
  scripts/bench_build.sh --quick
fi

if want smoke; then
  banner "smoke: query_server --serve / bench_service --loadgen round-trip"
  cmake --preset release
  cmake --build build --target query_server bench_service -j "$JOBS"
  scripts/serve_smoke.sh
fi

if want lint; then
  banner "lint: pathsep_lint over src/ bench/ examples/"
  cmake --preset release
  cmake --build build --target pathsep_lint -j "$JOBS"
  build/tools/lint/pathsep_lint src bench examples
fi

if want tidy; then
  banner "tidy: clang-tidy over src/"
  cmake --build build --target tidy
fi

banner "check.sh: all requested steps passed"
