// E13 — ablations of the design choices DESIGN.md calls out.
//
// (a) Portal placement: the per-vertex ε-ladder (this library / Thorup)
//     versus the naive single-anchor scheme that stores only d(v, x_c) and
//     answers d(u,x_c) + d_Q(x_c_u, x_c_v) + d(v,x_c) — cheap but with
//     unbounded stretch in theory (~3 in practice). Measures the space the
//     ladder costs against the stretch it buys.
// (b) Elimination order: min-degree vs min-fill width on the bounded-
//     treewidth families (drives the k of the bag separator).
// (c) Greedy separator policy: farthest-pair double sweep vs random-pair
//     path selection (path count achieved on expanders and meshes).
#include "common.hpp"

#include "oracle/path_oracle.hpp"
#include "sssp/dijkstra.hpp"
#include "treedec/tree_decomposition.hpp"
#include "util/rng.hpp"

using namespace pathsep;
using namespace pathsep::bench;

namespace {

// (a) anchor-only oracle: reuse the hierarchy's projections directly.
struct AnchorOracle {
  const hierarchy::DecompositionTree* tree;
  // per node, per path: projection of every vertex.
  std::vector<std::vector<oracle::PathProjection>> projections;

  explicit AnchorOracle(const hierarchy::DecompositionTree& t) : tree(&t) {
    for (const auto& node : t.nodes())
      projections.push_back(oracle::compute_projections(node));
  }

  Weight query(Vertex u, Vertex v) const {
    if (u == v) return 0;
    Weight best = graph::kInfiniteWeight;
    const auto& cu = tree->chain(u);
    const auto& cv = tree->chain(v);
    for (std::size_t level = 0;
         level < std::min(cu.size(), cv.size()) &&
         cu[level].first == cv[level].first;
         ++level) {
      const int node_id = cu[level].first;
      const auto& node = tree->node(node_id);
      for (std::size_t pi = 0; pi < node.paths.size(); ++pi) {
        const auto& proj = projections[static_cast<std::size_t>(node_id)][pi];
        const Weight du = proj.dist[cu[level].second];
        const Weight dv = proj.dist[cv[level].second];
        if (du == graph::kInfiniteWeight || dv == graph::kInfiniteWeight)
          continue;
        const Weight along =
            std::abs(node.paths[pi].prefix[proj.anchor[cu[level].second]] -
                     node.paths[pi].prefix[proj.anchor[cv[level].second]]);
        best = std::min(best, du + along + dv);
      }
    }
    return best;
  }

  std::size_t size_in_words() const {
    // 2 words (dist + anchor) per vertex per reachable path.
    std::size_t words = 0;
    for (const auto& per_node : projections)
      for (const auto& proj : per_node)
        for (Weight d : proj.dist)
          if (d != graph::kInfiniteWeight) words += 2;
    return words;
  }
};

}  // namespace

int main() {
  section("E13a", "ablation: eps-ladder portals vs anchor-only projections");
  {
    util::TableWriter table({"family", "n", "scheme", "words", "stretch_avg",
                             "stretch_max"});
    for (std::size_t n : {1024u, 4096u}) {
      Instance instance = make_triangulation(n, 700 + n);
      const hierarchy::DecompositionTree tree(instance.graph,
                                              *instance.finder);
      const oracle::PathOracle ladder(tree, 0.25);
      const AnchorOracle anchor(tree);

      util::Rng rng(42);
      util::OnlineStats s_ladder, s_anchor;
      for (int i = 0; i < 300; ++i) {
        const Vertex u = static_cast<Vertex>(rng.next_below(n));
        Vertex v = static_cast<Vertex>(rng.next_below(n));
        while (v == u) v = static_cast<Vertex>(rng.next_below(n));
        const Weight truth = sssp::distance(instance.graph, u, v);
        if (truth <= 0) continue;
        s_ladder.add(ladder.query(u, v) / truth);
        s_anchor.add(anchor.query(u, v) / truth);
      }
      table.add_row({instance.family, util::strf("%zu", n), "eps-ladder 0.25",
                     util::strf("%zu", ladder.size_in_words()),
                     util::strf("%.4f", s_ladder.mean()),
                     util::strf("%.4f", s_ladder.max())});
      table.add_row({instance.family, util::strf("%zu", n), "anchor-only",
                     util::strf("%zu", anchor.size_in_words()),
                     util::strf("%.4f", s_anchor.mean()),
                     util::strf("%.4f", s_anchor.max())});
    }
    table.print(std::cout);
    std::printf(
        "\nthe ladder's extra words buy the (1+eps) guarantee; anchor-only\n"
        "drifts toward stretch ~3 exactly as the Claim 1 analysis predicts.\n");
  }

  section("E13b", "ablation: min-degree vs min-fill elimination width");
  {
    util::TableWriter table(
        {"family", "n", "min_degree_w", "min_fill_w", "true_w<="});
    struct Case {
      const char* family;
      Graph graph;
      std::size_t bound;
    };
    util::Rng rng(17);
    std::vector<Case> cases;
    cases.push_back({"ktree-3", graph::random_ktree(300, 3, rng), 3});
    cases.push_back(
        {"partial-ktree-3", graph::random_partial_ktree(300, 3, 0.6, rng), 3});
    cases.push_back(
        {"series-parallel", graph::random_series_parallel(300, rng), 2});
    cases.push_back({"outerplanar",
                     graph::random_outerplanar(200, rng).graph, 2});
    cases.push_back({"cycle", graph::cycle_graph(200), 2});
    for (const Case& c : cases) {
      const auto md = treedec::from_elimination_order(
          c.graph, treedec::min_degree_order(c.graph));
      const auto mf = treedec::from_elimination_order(
          c.graph, treedec::min_fill_order(c.graph));
      table.add_row({c.family, util::strf("%zu", c.graph.num_vertices()),
                     util::strf("%zu", md.width()),
                     util::strf("%zu", mf.width()),
                     util::strf("%zu", c.bound)});
    }
    table.print(std::cout);
  }

  section("E13c", "ablation: greedy separator path-selection policy");
  {
    util::TableWriter table({"graph", "n", "double_sweep_k", "random_pair_k"});
    struct Named {
      std::string name;
      Graph graph;
    };
    util::Rng rng(23);
    std::vector<Named> graphs;
    graphs.push_back({"expander-8", graph::random_expander(1024, 8, rng)});
    graphs.push_back({"mesh 10^3", graph::mesh3d(10, 10, 10).graph});
    graphs.push_back({"torus 24x24", graph::torus(24, 24)});
    for (const Named& g : graphs) {
      const separator::PathSeparator sweep =
          separator::GreedyPathSeparator(5).find(g.graph);
      // Random-pair policy: emulate by removing shortest paths between
      // uniformly random pairs of the largest component.
      util::Rng pick(29);
      std::vector<bool> removed(g.graph.num_vertices(), false);
      std::size_t random_k = 0;
      const std::size_t n = g.graph.num_vertices();
      while (random_k < n) {
        const graph::Components comps =
            graph::connected_components(g.graph, removed);
        if (comps.count() == 0 || comps.largest() <= n / 2) break;
        std::vector<Vertex> members;
        for (Vertex v = 0; v < n; ++v)
          if (comps.label[v] == comps.largest_id()) members.push_back(v);
        const Vertex a = members[pick.next_below(members.size())];
        const Vertex b = members[pick.next_below(members.size())];
        const Vertex sources[] = {a};
        const sssp::ShortestPaths sp =
            sssp::dijkstra_masked(g.graph, sources, removed);
        for (Vertex v : sssp::extract_path(sp, b)) removed[v] = true;
        ++random_k;
      }
      table.add_row({g.name, util::strf("%zu", n),
                     util::strf("%zu", sweep.path_count()),
                     util::strf("%zu", random_k)});
    }
    table.print(std::cout);
    std::printf(
        "\nfarthest-pair sweeps remove long paths and need fewer of them;\n"
        "random pairs often pick short paths and inflate k.\n");
  }
  return 0;
}
