// E5/E6 — Theorem 3 and Note 1: small-worldization.
//
// E5: expected greedy hop count of the paper's landmark augmentation on
// grids and weighted planar triangulations, against the baseline
// un-augmented grid and Kleinberg's r^-2 augmentation [29]. The paper
// predicts O(k² log² n log² Δ) expected hops — the hops/log²n column should
// stay near-flat while the diameter doubles per row.
//
// E6: Note 1 — on bounded-treewidth graphs every separator path is a single
// vertex, so the hop bound O(k² log² n) loses its Δ dependence; we sweep the
// weight scale (and hence Δ) on k-trees and show hops stay put.
#include "common.hpp"

#include "smallworld/augmentation.hpp"
#include "sssp/dijkstra.hpp"
#include "smallworld/greedy_router.hpp"
#include "smallworld/kleinberg.hpp"
#include "smallworld/nearest_contact.hpp"

using namespace pathsep;
using namespace pathsep::bench;

namespace {

double augmented_hops(const Graph& g, const hierarchy::DecompositionTree& tree,
                      double aspect, std::size_t pairs, std::uint64_t seed) {
  const smallworld::PathSeparatorAugmentation augmentation(tree, aspect);
  util::Rng rng(seed);
  const auto contacts = augmentation.sample_all(rng);
  util::Rng eval(seed + 1);
  const smallworld::GreedyStats stats =
      smallworld::evaluate_greedy(g, contacts, pairs, eval);
  return stats.hops.mean();
}

}  // namespace

int main() {
  const std::size_t kPairs = 120;

  section("E5", "greedy routing hops on augmented grids (Thm 3 vs Kleinberg)");
  {
    util::TableWriter table({"side", "n", "plain_hops", "kleinberg_hops",
                             "pathsep_hops", "pathsep/log2^2(n)"});
    for (std::size_t side : {16u, 32u, 64u, 128u}) {
      auto gg = graph::grid(side, side);
      const std::size_t n = side * side;
      const hierarchy::DecompositionTree tree(
          gg.graph, separator::GridLineSeparator(side, side));

      util::Rng eval0(1000 + side);
      const double plain =
          smallworld::evaluate_greedy(gg.graph, {}, kPairs, eval0).hops.mean();

      util::Rng krng(2000 + side);
      const auto kleinberg = smallworld::kleinberg_contacts(gg, krng);
      util::Rng eval1(1000 + side);
      const double kl =
          smallworld::evaluate_greedy(gg.graph, kleinberg, kPairs, eval1)
              .hops.mean();

      const double aspect = static_cast<double>(2 * (side - 1));
      const double ours =
          augmented_hops(gg.graph, tree, aspect, kPairs, 3000 + side);
      const double log2n = std::log2(static_cast<double>(n));
      table.add_row({util::strf("%zu", side), util::strf("%zu", n),
                     util::strf("%.1f", plain), util::strf("%.1f", kl),
                     util::strf("%.1f", ours),
                     util::strf("%.3f", ours / (log2n * log2n))});
    }
    table.print(std::cout);
  }

  section("E5b", "weighted planar triangulations (Thm 3 full generality)");
  {
    util::TableWriter table({"n", "diam_est", "plain_hops", "pathsep_hops",
                             "pathsep/log2^2(n)"});
    for (std::size_t n : {512u, 2048u, 8192u}) {
      util::Rng grng(61 + n);
      auto gg = graph::random_apollonian(n, grng, graph::WeightSpec::euclidean());
      const hierarchy::DecompositionTree tree(
          gg.graph, separator::PlanarCycleSeparator(gg.positions));
      util::Rng mrng(1);
      const double diam = sssp::diameter_lower_bound(gg.graph, mrng);
      const double aspect = diam / gg.graph.min_edge_weight();

      util::Rng eval0(4000 + n);
      const double plain =
          smallworld::evaluate_greedy(gg.graph, {}, kPairs, eval0).hops.mean();
      const double ours =
          augmented_hops(gg.graph, tree, aspect, kPairs, 5000 + n);
      const double log2n = std::log2(static_cast<double>(n));
      table.add_row({util::strf("%zu", n), util::strf("%.2f", diam),
                     util::strf("%.1f", plain), util::strf("%.1f", ours),
                     util::strf("%.3f", ours / (log2n * log2n))});
    }
    table.print(std::cout);
  }

  section("E5c", "potential-argument instrumentation (Thm 3 proof shape)");
  {
    // The proof charges O(k log n log Delta) expected steps to each
    // (3/4)-shrink of the potential; equivalently, the number of greedy
    // steps per halving of d(current, target) should grow like
    // k log n log Delta, not like the diameter.
    util::TableWriter table({"side", "n", "hops_avg", "halvings_avg",
                             "steps_per_halving", "k*log2n*log2D"});
    for (std::size_t side : {16u, 32u, 64u, 128u}) {
      auto gg = graph::grid(side, side);
      const std::size_t n = side * side;
      const hierarchy::DecompositionTree tree(
          gg.graph, separator::GridLineSeparator(side, side));
      const smallworld::PathSeparatorAugmentation augmentation(
          tree, static_cast<double>(2 * (side - 1)));
      util::Rng arng(9100 + side);
      const auto contacts = augmentation.sample_all(arng);

      util::Rng prng(9200 + side);
      util::OnlineStats hops, halvings, per_halving;
      for (std::size_t trial = 0; trial < 80; ++trial) {
        const auto s = static_cast<graph::Vertex>(prng.next_below(n));
        auto t = static_cast<graph::Vertex>(prng.next_below(n));
        while (t == s) t = static_cast<graph::Vertex>(prng.next_below(n));
        const sssp::ShortestPaths sp = sssp::dijkstra(gg.graph, t);
        // Walk greedily, counting steps and distance halvings.
        graph::Vertex cur = s;
        std::size_t steps = 0, halved = 0;
        graph::Weight milestone = sp.dist[s];
        while (cur != t && steps < 4 * n) {
          graph::Vertex best = graph::kInvalidVertex;
          graph::Weight best_d = sp.dist[cur];
          for (const graph::Arc& a : gg.graph.neighbors(cur))
            if (sp.dist[a.to] < best_d) {
              best_d = sp.dist[a.to];
              best = a.to;
            }
          if (contacts[cur] != graph::kInvalidVertex &&
              sp.dist[contacts[cur]] < best_d) {
            best_d = sp.dist[contacts[cur]];
            best = contacts[cur];
          }
          if (best == graph::kInvalidVertex) break;
          cur = best;
          ++steps;
          // Unit weights: distances below 1 mean arrival, stop halving.
          while (milestone >= 1.0 && sp.dist[cur] <= milestone / 2) {
            milestone /= 2;
            ++halved;
          }
        }
        hops.add(static_cast<double>(steps));
        halvings.add(static_cast<double>(halved));
        if (halved > 0)
          per_halving.add(static_cast<double>(steps) /
                          static_cast<double>(halved));
      }
      const double log2n = std::log2(static_cast<double>(n));
      const double log2d = std::log2(static_cast<double>(2 * side));
      table.add_row({util::strf("%zu", side), util::strf("%zu", n),
                     util::strf("%.1f", hops.mean()),
                     util::strf("%.1f", halvings.mean()),
                     util::strf("%.2f", per_halving.mean()),
                     util::strf("%.0f", log2n * log2d)});
    }
    table.print(std::cout);
    std::printf(
        "\nsteps_per_halving should track k log2(n) log2(Delta) (k = 1\n"
        "here), i.e. grow mildly — while raw diameters quadruple per row.\n");
  }

  section("E6", "Note 1: treewidth graphs lose the Delta dependence");
  {
    util::TableWriter table(
        {"n", "weight_range", "aspect_est", "pathsep_hops"});
    for (double wmax : {1.0, 16.0, 256.0}) {
      const std::size_t n = 4096;
      util::Rng grng(71);
      const Graph g = graph::random_ktree(
          n, 3, grng,
          wmax == 1.0 ? graph::WeightSpec::unit()
                      : graph::WeightSpec::uniform_real(1.0, wmax));
      const hierarchy::DecompositionTree tree(
          g, separator::TreewidthBagSeparator());
      util::Rng mrng(1);
      const double aspect = sssp::aspect_ratio_estimate(g, mrng);
      const double ours = augmented_hops(g, tree, aspect, kPairs, 6000);
      table.add_row({util::strf("%zu", n), util::strf("1..%g", wmax),
                     util::strf("%.1f", aspect), util::strf("%.1f", ours)});
    }
    table.print(std::cout);
    std::printf(
        "\npaper Note 1: separator paths are single vertices on treewidth\n"
        "graphs, so hops are O(k^2 log^2 n) independent of Delta — the\n"
        "pathsep_hops column should stay flat as the weight range grows.\n");
  }

  section("E6b", "Note 2: nearest-separator contacts on unweighted grids");
  {
    util::TableWriter table({"side", "n", "delta(sep diam)", "claim1_hops",
                             "nearest_hops", "bound log2^2n+d*log2n"});
    for (std::size_t side : {16u, 32u, 64u, 128u}) {
      auto gg = graph::grid(side, side);
      const std::size_t n = side * side;
      const hierarchy::DecompositionTree tree(
          gg.graph, separator::GridLineSeparator(side, side));
      const double aspect = static_cast<double>(2 * (side - 1));
      const double claim1 =
          augmented_hops(gg.graph, tree, aspect, kPairs, 7000 + side);

      const smallworld::NearestContactAugmentation nearest(tree);
      util::Rng rng(8000 + side);
      const auto contacts = nearest.sample_all(rng);
      util::Rng eval(8001 + side);
      const double hops =
          smallworld::evaluate_greedy(gg.graph, contacts, kPairs, eval)
              .hops.mean();
      const double log2n = std::log2(static_cast<double>(n));
      table.add_row(
          {util::strf("%zu", side), util::strf("%zu", n),
           util::strf("%.0f", nearest.max_path_length()),
           util::strf("%.1f", claim1), util::strf("%.1f", hops),
           util::strf("%.0f",
                      log2n * log2n + nearest.max_path_length() * log2n)});
    }
    table.print(std::cout);
    std::printf(
        "\npaper Note 2: with unweighted graphs and separator diameter\n"
        "delta, contacting the nearest separator vertex gives expected\n"
        "O(log^2 n + delta log n) hops.\n");
  }
  return 0;
}
