// E11 — the paper's oracle vs classical baselines on the same graphs:
//   * exact APSP table: O(n²) words, O(1) query, stretch 1;
//   * on-demand Dijkstra: O(m) words, O(m log n) query, stretch 1;
//   * Thorup–Zwick [45]: O(k·n^{1+1/k}) words, O(k) query, stretch 2k-1;
//   * this paper (Thm 2): O(k/ε·n log n) words, O(k/ε·log n) query, 1+ε.
// The shape to reproduce: the path-separator oracle sits near-linear in
// space like TZ, but with stretch arbitrarily close to 1 where TZ pays
// stretch >= 3 for any sub-quadratic space.
#include "common.hpp"

#include "oracle/exact_oracle.hpp"
#include "oracle/path_oracle.hpp"
#include "oracle/thorup_zwick.hpp"
#include "sssp/alt.hpp"
#include "sssp/bidirectional.hpp"
#include "sssp/dijkstra.hpp"
#include "util/rng.hpp"

namespace {

/// Adapter giving bidirectional Dijkstra the oracle interface.
class BidirectionalOracle {
 public:
  explicit BidirectionalOracle(const pathsep::graph::Graph& g) : graph_(&g) {}
  pathsep::graph::Weight query(pathsep::graph::Vertex u,
                               pathsep::graph::Vertex v) const {
    return pathsep::sssp::bidirectional_distance(*graph_, u, v).distance;
  }
  std::size_t size_in_words() const { return graph_->size_in_words(); }

 private:
  const pathsep::graph::Graph* graph_;
};

}  // namespace

using namespace pathsep;
using namespace pathsep::bench;

namespace {

struct Sample {
  std::vector<std::pair<Vertex, Vertex>> pairs;
  std::vector<Weight> truth;
};

Sample sample_pairs(const Graph& g, std::size_t count, std::uint64_t seed) {
  Sample s;
  util::Rng rng(seed);
  const std::size_t n = g.num_vertices();
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex u = static_cast<Vertex>(rng.next_below(n));
    Vertex v = static_cast<Vertex>(rng.next_below(n));
    while (v == u) v = static_cast<Vertex>(rng.next_below(n));
    s.pairs.push_back({u, v});
    s.truth.push_back(sssp::distance(g, u, v));
  }
  return s;
}

template <typename Oracle>
void report(util::TableWriter& table, const std::string& name,
            const std::string& family, std::size_t n, const Oracle& oracle,
            const Sample& sample, double build_s) {
  util::OnlineStats stretch;
  util::Timer timer;
  for (std::size_t i = 0; i < sample.pairs.size(); ++i) {
    const Weight est = oracle.query(sample.pairs[i].first,
                                    sample.pairs[i].second);
    if (sample.truth[i] > 0) stretch.add(est / sample.truth[i]);
  }
  const double query_us = timer.elapsed_seconds() * 1e6 /
                          static_cast<double>(sample.pairs.size());
  table.add_row({family, util::strf("%zu", n), name,
                 util::strf("%zu", oracle.size_in_words()),
                 util::strf("%.2f", static_cast<double>(oracle.size_in_words()) /
                                        static_cast<double>(n)),
                 util::strf("%.2f", query_us),
                 util::strf("%.4f", stretch.mean()),
                 util::strf("%.4f", stretch.max()),
                 util::strf("%.2f", build_s)});
}

void run_family(util::TableWriter& table, Instance instance,
                std::uint64_t seed) {
  const std::size_t n = instance.graph.num_vertices();
  const Sample sample = sample_pairs(instance.graph, 300, seed);

  {
    util::Timer t;
    const hierarchy::DecompositionTree tree(instance.graph, *instance.finder);
    const oracle::PathOracle oracle(tree, 0.25);
    report(table, "pathsep eps=0.25", instance.family, n, oracle, sample,
           t.elapsed_seconds());
  }
  {
    util::Timer t;
    util::Rng rng(seed + 1);
    const oracle::ThorupZwickOracle tz(instance.graph, 2, rng);
    report(table, "thorup-zwick k=2", instance.family, n, tz, sample,
           t.elapsed_seconds());
  }
  {
    util::Timer t;
    util::Rng rng(seed + 2);
    const oracle::ThorupZwickOracle tz(instance.graph, 3, rng);
    report(table, "thorup-zwick k=3", instance.family, n, tz, sample,
           t.elapsed_seconds());
  }
  {
    util::Timer t;
    const oracle::DijkstraOracle dijkstra(instance.graph);
    report(table, "dijkstra on-demand", instance.family, n, dijkstra, sample,
           t.elapsed_seconds());
  }
  {
    util::Timer t;
    const BidirectionalOracle bidi(instance.graph);
    report(table, "bidirectional dijkstra", instance.family, n, bidi, sample,
           t.elapsed_seconds());
  }
  {
    util::Timer t;
    util::Rng rng(seed + 3);
    const sssp::AltOracle alt(instance.graph, 8, rng);
    report(table, "ALT 8 landmarks", instance.family, n, alt, sample,
           t.elapsed_seconds());
  }
  if (n <= 4096) {
    util::Timer t;
    const oracle::ApspOracle apsp(instance.graph);
    report(table, "apsp table", instance.family, n, apsp, sample,
           t.elapsed_seconds());
  }
}

}  // namespace

int main() {
  section("E11", "oracle space/time/stretch vs baselines");
  util::TableWriter table({"family", "n", "oracle", "words", "words/n",
                           "query_us", "stretch_avg", "stretch_max",
                           "build_s"});
  run_family(table, make_triangulation(2048, 101), 11);
  run_family(table, make_triangulation(8192, 103), 13);
  run_family(table, make_grid(64), 17);
  run_family(table, make_ktree(4096, 3, 107), 19);
  table.print(std::cout);
  std::printf(
      "\nexpected shape: apsp words/n ~ n (quadratic, exact); pathsep and\n"
      "thorup-zwick words/n stay polylog-ish, but TZ's stretch_max runs\n"
      "toward 2k-1 while pathsep stays within 1+eps = 1.25.\n");
  return 0;
}
