// E1 — Theorem 1 / Theorem 6.1 / Theorem 7: measured k-path separator sizes.
// E16 — flow-cutter Pareto evaluation: cut size vs balance vs build time of
//       FlowSeparator against the structural and greedy finders, plus the
//       downstream label bytes each backend induces. Results land in
//       BENCH_separator.json (--out) so the Pareto trajectory is tracked
//       across PRs.
//
// For every graph family the paper names, builds the full decomposition
// hierarchy and reports the measured max paths per separator (the "k"),
// the balance (largest component fraction after the root separator), the
// hierarchy depth against the log2(n) bound, and construction time. The
// paper predicts: trees and unweighted meshes k = 1, planar k <= 3
// (strong), treewidth-w graphs k <= w+1 (strong).
#include <fstream>

#include "common.hpp"
#include "flow/flow_separator.hpp"
#include "flow/registry.hpp"
#include "oracle/labels.hpp"
#include "oracle/serialize.hpp"
#include "util/args.hpp"

using namespace pathsep;
using namespace pathsep::bench;

namespace {

void run_family(util::TableWriter& table, Instance instance,
                std::size_t k_bound) {
  const std::size_t n = instance.graph.num_vertices();
  util::Timer timer;
  const hierarchy::DecompositionTree tree(instance.graph, *instance.finder);
  const double build_s = timer.elapsed_seconds();

  // Root-level balance.
  const auto& root = tree.node(0);
  std::vector<bool> mask(n, false);
  for (const auto& path : root.paths)
    for (Vertex v : path.verts) mask[v] = true;
  const graph::Components comps =
      graph::connected_components(instance.graph, mask);
  const double balance =
      comps.count() == 0
          ? 0.0
          : static_cast<double>(comps.largest()) / static_cast<double>(n);

  const double depth_bound = std::log2(static_cast<double>(n)) + 1;
  table.add_row({instance.family, util::strf("%zu", n),
                 util::strf("%zu", instance.graph.num_edges()),
                 util::strf("%zu", tree.max_separator_paths()),
                 k_bound ? util::strf("%zu", k_bound) : "-",
                 util::strf("%.3f", balance),
                 util::strf("%u", tree.height()),
                 util::strf("%.1f", depth_bound),
                 util::strf("%.3f", build_s)});
}

/// One finder's root separator on one graph, as a point in the
/// cut-size/balance plane.
struct RootRun {
  std::string finder;
  std::size_t sep_vertices = 0;
  std::size_t paths = 0;
  std::size_t largest_component = 0;
  double balance = 0;
  double seconds = 0;
};

RootRun measure_root(const std::string& name,
                     const separator::SeparatorFinder& finder,
                     const Graph& g) {
  RootRun run;
  run.finder = name;
  util::Timer timer;
  const separator::PathSeparator s = finder.find(g);
  run.seconds = timer.elapsed_seconds();
  run.sep_vertices = s.vertices().size();
  run.paths = s.path_count();
  const graph::Components comps =
      graph::connected_components(g, s.removal_mask(g.num_vertices()));
  run.largest_component = comps.count() == 0 ? 0 : comps.largest();
  run.balance = static_cast<double>(run.largest_component) /
                static_cast<double>(g.num_vertices());
  return run;
}

/// Downstream cost: total serialized label bytes when the whole oracle is
/// built through one finder.
struct LabelRun {
  std::string finder;
  std::size_t label_bytes = 0;
  double seconds = 0;
};

LabelRun measure_labels(const std::string& name,
                        const separator::SeparatorFinder& finder,
                        const Graph& g, double epsilon) {
  LabelRun run;
  run.finder = name;
  util::Timer timer;
  const hierarchy::DecompositionTree tree(g, finder);
  const auto labels = oracle::build_labels(tree, epsilon);
  run.seconds = timer.elapsed_seconds();
  for (const oracle::DistanceLabel& label : labels)
    run.label_bytes += oracle::serialize_label(label).size();
  return run;
}

/// Domination at the Definition-1 balance target. A single bipartition cut
/// can never push the larger side below (M - cut)/2, while a multi-path
/// removal splits into many components, so comparing raw (cut, max_side)
/// points across the two finder families is vacuous. The meaningful contest
/// is the constrained problem both solve: reach largest component <= n/2
/// (property P3) with the smallest separator. Flow dominates when its front
/// holds a point meeting the target with a strictly smaller cut than the
/// greedy separator, and its realized separator is strictly smaller too.
bool dominates_at_p3(const flow::ParetoFront& front, std::size_t n,
                     const RootRun& flow_root, const RootRun& greedy_root) {
  const flow::CutCandidate* best = front.best_within(n / 2);
  return best != nullptr && best->cut.size() < greedy_root.sep_vertices &&
         flow_root.sep_vertices < greedy_root.sep_vertices &&
         flow_root.largest_component <= n / 2;
}

int run_e16(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::string out_path = args.get("out", "BENCH_separator.json");
  const auto road_side =
      static_cast<std::size_t>(args.get_int("road-side", 320));
  const auto label_side =
      static_cast<std::size_t>(args.get_int("label-side", 96));
  const double epsilon = args.get_double("epsilon", 0.5);
  for (const std::string& flag : args.unused())
    std::fprintf(stderr, "warning: unused flag --%s\n", flag.c_str());

  section("E16", "flow cutter vs structural/greedy finders (perturbed grid)");
  util::Rng rng(101);
  const graph::GeometricGraph gg = graph::road_network(road_side, road_side, rng);
  const Graph& g = gg.graph;
  std::printf("road %zux%zu: %zu vertices, %zu edges\n", road_side, road_side,
              g.num_vertices(), g.num_edges());

  // Root separators: one point per finder.
  const flow::FlowSeparator flow_finder(gg.positions);
  const separator::PlanarCycleSeparator thorup(gg.positions);
  const separator::GreedyPathSeparator greedy;
  const separator::StrongGreedySeparator strong;
  std::vector<RootRun> roots;
  roots.push_back(measure_root("flow", flow_finder, g));
  roots.push_back(measure_root("thorup", thorup, g));
  roots.push_back(measure_root("greedy-paths", greedy, g));
  roots.push_back(measure_root("strong-greedy", strong, g));

  util::TableWriter root_table({"finder", "sep_vertices", "paths",
                                "largest_comp", "balance", "seconds"});
  for (const RootRun& r : roots)
    root_table.add_row({r.finder, util::strf("%zu", r.sep_vertices),
                        util::strf("%zu", r.paths),
                        util::strf("%zu", r.largest_component),
                        util::strf("%.3f", r.balance),
                        util::strf("%.3f", r.seconds)});
  root_table.print(std::cout);

  // The flow Pareto front itself (cut size vs balance, one cutting round).
  std::vector<Vertex> ids(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) ids[v] = v;
  util::Timer front_timer;
  const flow::ParetoFront front = flow_finder.pareto_front(g, ids);
  const double front_seconds = front_timer.elapsed_seconds();
  util::TableWriter front_table(
      {"cut", "max_side", "max_side_frac", "direction", "permille", "side"});
  for (const flow::CutCandidate& c : front.cuts())
    front_table.add_row({util::strf("%zu", c.cut.size()),
                         util::strf("%zu", c.max_side()),
                         util::strf("%.3f", c.max_side_fraction()),
                         util::strf("%u", c.direction),
                         util::strf("%u", c.permille),
                         c.source_side ? "source" : "target"});
  std::printf("\nflow Pareto front (%zu points, %.3fs):\n", front.size(),
              front_seconds);
  front_table.print(std::cout);

  const RootRun& greedy_root = roots[2];
  const bool dominates =
      dominates_at_p3(front, g.num_vertices(), roots[0], greedy_root);
  std::printf("\nflow_dominates_greedy=%s\n", dominates ? "true" : "false");

  // Downstream label bytes on a smaller instance of the same family.
  section("E16b", "downstream label bytes per separator backend");
  util::Rng label_rng(103);
  const graph::GeometricGraph lg =
      graph::road_network(label_side, label_side, label_rng);
  const flow::FlowSeparator label_flow(lg.positions);
  const separator::PlanarCycleSeparator label_thorup(lg.positions);
  const separator::GreedyPathSeparator label_greedy;
  std::vector<LabelRun> label_runs;
  label_runs.push_back(measure_labels("flow", label_flow, lg.graph, epsilon));
  label_runs.push_back(
      measure_labels("thorup", label_thorup, lg.graph, epsilon));
  label_runs.push_back(
      measure_labels("greedy-paths", label_greedy, lg.graph, epsilon));
  util::TableWriter label_table({"finder", "label_bytes", "bytes/vertex",
                                 "build_s"});
  for (const LabelRun& r : label_runs)
    label_table.add_row(
        {r.finder, util::strf("%zu", r.label_bytes),
         util::strf("%.1f", static_cast<double>(r.label_bytes) /
                                static_cast<double>(lg.graph.num_vertices())),
         util::strf("%.3f", r.seconds)});
  label_table.print(std::cout);

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"bench_separator\",\n  \"road_side\": " << road_side
      << ",\n  \"n\": " << g.num_vertices()
      << ",\n  \"flow_dominates_greedy\": " << (dominates ? "true" : "false")
      << ",\n  \"pareto_seconds\": " << front_seconds
      << ",\n  \"roots\": [\n";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const RootRun& r = roots[i];
    out << "    {\"finder\": \"" << r.finder
        << "\", \"sep_vertices\": " << r.sep_vertices
        << ", \"paths\": " << r.paths
        << ", \"largest_component\": " << r.largest_component
        << ", \"balance\": " << r.balance << ", \"seconds\": " << r.seconds
        << "}" << (i + 1 < roots.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"pareto\": [\n";
  const auto cuts = front.cuts();
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    out << "    {\"cut\": " << cuts[i].cut.size()
        << ", \"max_side\": " << cuts[i].max_side()
        << ", \"direction\": " << cuts[i].direction
        << ", \"permille\": " << cuts[i].permille << "}"
        << (i + 1 < cuts.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"label_side\": " << label_side
      << ",\n  \"label_epsilon\": " << epsilon << ",\n  \"labels\": [\n";
  for (std::size_t i = 0; i < label_runs.size(); ++i) {
    const LabelRun& r = label_runs[i];
    out << "    {\"finder\": \"" << r.finder
        << "\", \"label_bytes\": " << r.label_bytes
        << ", \"seconds\": " << r.seconds << "}"
        << (i + 1 < label_runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  section("E1", "k-path separator sizes per graph family (Thm 1/6.1/7)");
  util::TableWriter table({"family", "n", "m", "k_measured", "k_paper",
                           "root_balance", "depth", "log2n+1", "build_s"});

  for (std::size_t side : {16u, 32u, 64u, 128u, 256u})
    run_family(table, make_grid(side), 1);
  for (std::size_t n : {256u, 1024u, 4096u, 16384u})
    run_family(table, make_tree(n, 7 + n), 1);
  for (std::size_t n : {256u, 1024u, 4096u, 16384u})
    run_family(table, make_triangulation(n, 11 + n), 3);
  for (std::size_t side : {16u, 32u, 64u})
    run_family(table, make_road(side, 13 + side), 3);
  for (std::size_t n : {256u, 1024u, 4096u})
    run_family(table, make_series_parallel(n, 17 + n), 3);
  for (std::size_t n : {256u, 1024u, 4096u})
    run_family(table, make_outerplanar(n, 23 + n), 3);
  for (std::size_t k : {2u, 3u, 4u})
    run_family(table, make_ktree(2048, k, 19 + k), k + 1);

  table.print(std::cout);

  section("E1b", "Definition 1 validation (P1 shortest paths, P3 balance)");
  util::TableWriter check({"family", "n", "valid", "paths", "sep_vertices",
                           "largest_comp"});
  std::vector<Instance> instances;
  instances.push_back(make_grid(32));
  instances.push_back(make_tree(1024, 3));
  instances.push_back(make_triangulation(1024, 5));
  instances.push_back(make_road(24, 7));
  instances.push_back(make_series_parallel(512, 9));
  instances.push_back(make_ktree(512, 3, 11));
  for (auto& instance : instances) {
    const separator::PathSeparator s = instance.finder->find(instance.graph);
    const separator::ValidationReport report =
        separator::validate(instance.graph, s);
    check.add_row({instance.family,
                   util::strf("%zu", instance.graph.num_vertices()),
                   report.ok ? "yes" : ("NO: " + report.error),
                   util::strf("%zu", report.path_count),
                   util::strf("%zu", report.separator_vertices),
                   util::strf("%zu", report.largest_component)});
  }
  check.print(std::cout);
  return run_e16(argc, argv);
}
