// E1 — Theorem 1 / Theorem 6.1 / Theorem 7: measured k-path separator sizes.
//
// For every graph family the paper names, builds the full decomposition
// hierarchy and reports the measured max paths per separator (the "k"),
// the balance (largest component fraction after the root separator), the
// hierarchy depth against the log2(n) bound, and construction time. The
// paper predicts: trees and unweighted meshes k = 1, planar k <= 3
// (strong), treewidth-w graphs k <= w+1 (strong).
#include "common.hpp"

using namespace pathsep;
using namespace pathsep::bench;

namespace {

void run_family(util::TableWriter& table, Instance instance,
                std::size_t k_bound) {
  const std::size_t n = instance.graph.num_vertices();
  util::Timer timer;
  const hierarchy::DecompositionTree tree(instance.graph, *instance.finder);
  const double build_s = timer.elapsed_seconds();

  // Root-level balance.
  const auto& root = tree.node(0);
  std::vector<bool> mask(n, false);
  for (const auto& path : root.paths)
    for (Vertex v : path.verts) mask[v] = true;
  const graph::Components comps =
      graph::connected_components(instance.graph, mask);
  const double balance =
      comps.count() == 0
          ? 0.0
          : static_cast<double>(comps.largest()) / static_cast<double>(n);

  const double depth_bound = std::log2(static_cast<double>(n)) + 1;
  table.add_row({instance.family, util::strf("%zu", n),
                 util::strf("%zu", instance.graph.num_edges()),
                 util::strf("%zu", tree.max_separator_paths()),
                 k_bound ? util::strf("%zu", k_bound) : "-",
                 util::strf("%.3f", balance),
                 util::strf("%u", tree.height()),
                 util::strf("%.1f", depth_bound),
                 util::strf("%.3f", build_s)});
}

}  // namespace

int main() {
  section("E1", "k-path separator sizes per graph family (Thm 1/6.1/7)");
  util::TableWriter table({"family", "n", "m", "k_measured", "k_paper",
                           "root_balance", "depth", "log2n+1", "build_s"});

  for (std::size_t side : {16u, 32u, 64u, 128u, 256u})
    run_family(table, make_grid(side), 1);
  for (std::size_t n : {256u, 1024u, 4096u, 16384u})
    run_family(table, make_tree(n, 7 + n), 1);
  for (std::size_t n : {256u, 1024u, 4096u, 16384u})
    run_family(table, make_triangulation(n, 11 + n), 3);
  for (std::size_t side : {16u, 32u, 64u})
    run_family(table, make_road(side, 13 + side), 3);
  for (std::size_t n : {256u, 1024u, 4096u})
    run_family(table, make_series_parallel(n, 17 + n), 3);
  for (std::size_t n : {256u, 1024u, 4096u})
    run_family(table, make_outerplanar(n, 23 + n), 3);
  for (std::size_t k : {2u, 3u, 4u})
    run_family(table, make_ktree(2048, k, 19 + k), k + 1);

  table.print(std::cout);

  section("E1b", "Definition 1 validation (P1 shortest paths, P3 balance)");
  util::TableWriter check({"family", "n", "valid", "paths", "sep_vertices",
                           "largest_comp"});
  std::vector<Instance> instances;
  instances.push_back(make_grid(32));
  instances.push_back(make_tree(1024, 3));
  instances.push_back(make_triangulation(1024, 5));
  instances.push_back(make_road(24, 7));
  instances.push_back(make_series_parallel(512, 9));
  instances.push_back(make_ktree(512, 3, 11));
  for (auto& instance : instances) {
    const separator::PathSeparator s = instance.finder->find(instance.graph);
    const separator::ValidationReport report =
        separator::validate(instance.graph, s);
    check.add_row({instance.family,
                   util::strf("%zu", instance.graph.num_vertices()),
                   report.ok ? "yes" : ("NO: " + report.error),
                   util::strf("%zu", report.path_count),
                   util::strf("%zu", report.separator_vertices),
                   util::strf("%zu", report.largest_component)});
  }
  check.print(std::cout);
  return 0;
}
