// E7/E8/E9 — the §5 lower-bound constructions, measured.
//
// E7 (Thm 5): sparse expanders admit no small k-path separator — the greedy
//   separator's path count must grow polynomially in n (the paper proves
//   k = Ω(√n / log² n) is forced for (1+ε)-labelings to exist).
// E8 (Thm 6.3): the t×t mesh plus a universal apex is K6-minor-free, yet any
//   *strong* (single-stage) separator needs Ω(√n) paths because the apex
//   collapses the diameter to 2 (every shortest path has ≤ 3 vertices). The
//   multi-stage escape hatch — remove the apex first, then cut the mesh —
//   achieves k = 2, matching Theorem 1's sequence-of-stages definition.
// E9 (Thm 7): K_{r, n-r} needs ≥ r/2 paths; the bag separator achieves r+1.
#include "common.hpp"

using namespace pathsep;
using namespace pathsep::bench;

namespace {

std::size_t greedy_paths(const Graph& g, std::uint64_t seed) {
  const separator::GreedyPathSeparator finder(seed);
  const separator::PathSeparator s = finder.find(g);
  const auto report = separator::validate(g, s);
  return report.ok ? report.path_count : static_cast<std::size_t>(-1);
}

}  // namespace

int main() {
  section("E7", "Thm 5: sparse expanders have no small path separators");
  {
    util::TableWriter table(
        {"n", "m", "greedy_paths", "paths/sqrt(n)", "paths/log2(n)"});
    for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
      util::Rng rng(81 + n);
      const Graph g = graph::random_expander(n, 8, rng);
      const std::size_t k = greedy_paths(g, 5);
      table.add_row({util::strf("%zu", n), util::strf("%zu", g.num_edges()),
                     util::strf("%zu", k),
                     util::strf("%.2f", k / std::sqrt(static_cast<double>(n))),
                     util::strf("%.2f",
                                k / std::log2(static_cast<double>(n)))});
    }
    table.print(std::cout);
    std::printf(
        "\npaths/sqrt(n) should stay roughly constant (polynomial growth)\n"
        "while paths/log2(n) must diverge — no polylog separator exists.\n");
  }

  section("E7b", "contrast: planar graphs of the same size stay at k <= 3");
  {
    util::TableWriter table({"n", "planar_k", "expander_k"});
    for (std::size_t n : {256u, 1024u, 4096u}) {
      const Instance planar = make_triangulation(n, 91 + n);
      const separator::PathSeparator s = planar.finder->find(planar.graph);
      util::Rng rng(81 + n);
      const Graph ex = graph::random_expander(n, 8, rng);
      table.add_row({util::strf("%zu", n), util::strf("%zu", s.path_count()),
                     util::strf("%zu", greedy_paths(ex, 5))});
    }
    table.print(std::cout);
  }

  section("E8", "Thm 6.3: mesh+apex — strong separators need Omega(sqrt n)");
  {
    util::TableWriter table({"t", "n", "strong_lb=t/3", "strong_greedy_k",
                             "staged_k", "staged_valid"});
    for (std::size_t t : {8u, 16u, 32u, 64u}) {
      const Graph g = graph::mesh_with_apex(t);
      const std::size_t n = g.num_vertices();
      // Best-effort STRONG separator (single stage, paths shortest in G):
      // grows like n because the apex caps every path at 3 vertices.
      std::string strong_k = "-";
      if (t <= 32) {
        const separator::PathSeparator strong =
            separator::StrongGreedySeparator(3).find(g);
        const auto strong_report = separator::validate(g, strong);
        strong_k = strong_report.ok
                       ? util::strf("%zu", strong_report.path_count)
                       : "invalid";
      }
      // The staged separator Theorem 1 allows: stage 0 removes the apex (a
      // trivial shortest path), stage 1 cuts the middle mesh row (now a
      // shortest path in the residual mesh).
      separator::PathSeparator staged;
      staged.stages.push_back({{static_cast<Vertex>(t * t)}});
      separator::PathSeparator::Path row;
      const std::size_t r = t / 2;
      for (std::size_t c = 0; c < t; ++c)
        row.push_back(static_cast<Vertex>(r * t + c));
      staged.stages.push_back({row});
      const auto report = separator::validate(g, staged);
      table.add_row({util::strf("%zu", t), util::strf("%zu", n),
                     util::strf("%.1f", static_cast<double>(t) / 3),
                     strong_k, util::strf("%zu", staged.path_count()),
                     report.ok ? "yes" : ("NO: " + report.error)});
    }
    table.print(std::cout);
    std::printf(
        "\nany strong separator is a union of k shortest paths with <= 3k\n"
        "vertices (diameter 2), and < t vertices cannot halve the t x t\n"
        "mesh -> strong k >= t/3 = Omega(sqrt n). The staged separator\n"
        "(apex, then mesh row) achieves k = 2 for every t.\n");
  }

  section("E9", "Thm 7: K_{r,n-r} needs k >= r/2; bag separator gives r+1");
  {
    util::TableWriter table({"r", "n", "lower_bound=r/2", "bag_paths",
                             "bag_valid"});
    for (std::size_t r : {2u, 4u, 8u, 16u}) {
      const std::size_t n = 24 * r;
      const Graph g = graph::complete_bipartite(r, n - r);
      const separator::TreewidthBagSeparator finder;
      const separator::PathSeparator s = finder.find(g);
      const auto report = separator::validate(g, s);
      table.add_row({util::strf("%zu", r), util::strf("%zu", n),
                     util::strf("%.1f", static_cast<double>(r) / 2),
                     util::strf("%zu", report.path_count),
                     report.ok ? "yes" : ("NO: " + report.error)});
    }
    table.print(std::cout);
  }
  return 0;
}
