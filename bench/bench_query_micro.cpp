// Microbenchmarks (google-benchmark): query latency of the path-separator
// oracle against baselines, and separator construction throughput. These
// complement the table harnesses with distribution-free wall-clock numbers.
#include <benchmark/benchmark.h>

#include <map>

#include "common.hpp"
#include "oracle/exact_oracle.hpp"
#include "oracle/path_oracle.hpp"
#include "oracle/thorup_zwick.hpp"
#include "util/rng.hpp"

using namespace pathsep;
using namespace pathsep::bench;

namespace {

struct Fixture {
  Instance instance;
  std::unique_ptr<hierarchy::DecompositionTree> tree;
  std::unique_ptr<oracle::PathOracle> oracle;

  explicit Fixture(std::size_t n) : instance(make_triangulation(n, 900 + n)) {
    tree = std::make_unique<hierarchy::DecompositionTree>(instance.graph,
                                                          *instance.finder);
    oracle = std::make_unique<oracle::PathOracle>(*tree, 0.25);
  }
};

Fixture& fixture(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<Fixture>> cache;
  auto& slot = cache[n];
  if (!slot) slot = std::make_unique<Fixture>(n);
  return *slot;
}

void BM_PathOracleQuery(benchmark::State& state) {
  Fixture& f = fixture(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = f.instance.graph.num_vertices();
  util::Rng rng(1);
  for (auto _ : state) {
    const auto u = static_cast<graph::Vertex>(rng.next_below(n));
    const auto v = static_cast<graph::Vertex>(rng.next_below(n));
    benchmark::DoNotOptimize(f.oracle->query(u, v));
  }
}
BENCHMARK(BM_PathOracleQuery)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_DijkstraQuery(benchmark::State& state) {
  Fixture& f = fixture(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = f.instance.graph.num_vertices();
  const oracle::DijkstraOracle oracle(f.instance.graph);
  util::Rng rng(1);
  for (auto _ : state) {
    const auto u = static_cast<graph::Vertex>(rng.next_below(n));
    const auto v = static_cast<graph::Vertex>(rng.next_below(n));
    benchmark::DoNotOptimize(oracle.query(u, v));
  }
}
BENCHMARK(BM_DijkstraQuery)->Arg(1024)->Arg(4096);

void BM_ThorupZwickQuery(benchmark::State& state) {
  Fixture& f = fixture(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = f.instance.graph.num_vertices();
  util::Rng build_rng(2);
  const oracle::ThorupZwickOracle oracle(f.instance.graph, 3, build_rng);
  util::Rng rng(1);
  for (auto _ : state) {
    const auto u = static_cast<graph::Vertex>(rng.next_below(n));
    const auto v = static_cast<graph::Vertex>(rng.next_below(n));
    benchmark::DoNotOptimize(oracle.query(u, v));
  }
}
BENCHMARK(BM_ThorupZwickQuery)->Arg(1024)->Arg(4096);

void BM_PlanarSeparator(benchmark::State& state) {
  Fixture& f = fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.instance.finder->find(f.instance.graph));
  }
}
BENCHMARK(BM_PlanarSeparator)->Arg(1024)->Arg(4096);

void BM_HierarchyBuild(benchmark::State& state) {
  Fixture& f = fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    hierarchy::DecompositionTree tree(f.instance.graph, *f.instance.finder);
    benchmark::DoNotOptimize(tree.height());
  }
}
BENCHMARK(BM_HierarchyBuild)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
