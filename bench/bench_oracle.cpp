// E2 — Theorem 2: the (1+ε)-approximate distance oracle.
//
// Reports, per family / n / ε: total space in words against the
// O(k/ε · n log n) claim (shown as words per n·log2(n)), query time, the
// number of connections scanned per query against O(k/ε · log n), and the
// observed stretch (must stay within [1, 1+ε]; max over sampled pairs).
#include "common.hpp"

#include "oracle/path_oracle.hpp"
#include "sssp/dijkstra.hpp"
#include "util/rng.hpp"

using namespace pathsep;
using namespace pathsep::bench;

namespace {

void run(util::TableWriter& table, Instance instance, double epsilon,
         std::size_t pairs) {
  const std::size_t n = instance.graph.num_vertices();
  const hierarchy::DecompositionTree tree(instance.graph, *instance.finder);
  util::Timer build_timer;
  const oracle::PathOracle oracle(tree, epsilon);
  const double build_s = build_timer.elapsed_seconds();

  util::Rng rng(9000 + n);
  std::vector<std::pair<Vertex, Vertex>> sampled;
  for (std::size_t i = 0; i < pairs; ++i) {
    const Vertex u = static_cast<Vertex>(rng.next_below(n));
    Vertex v = static_cast<Vertex>(rng.next_below(n));
    while (v == u) v = static_cast<Vertex>(rng.next_below(n));
    sampled.push_back({u, v});
  }
  // Pure query timing first (no Dijkstra in the loop)...
  util::Timer query_timer;
  Weight sink = 0;
  for (const auto& [u, v] : sampled) sink += oracle.query(u, v);
  const double query_us =
      query_timer.elapsed_seconds() * 1e6 / static_cast<double>(pairs);
  util::do_not_optimize(sink);
  // ...then stretch and visited-connection accounting.
  util::OnlineStats stretch, visited_stats;
  for (const auto& [u, v] : sampled) {
    std::size_t visited = 0;
    const Weight est = oracle.query_counted(u, v, &visited);
    visited_stats.add(static_cast<double>(visited));
    const Weight truth = sssp::distance(instance.graph, u, v);
    if (truth > 0) stretch.add(est / truth);
  }

  const double nlogn =
      static_cast<double>(n) * std::log2(static_cast<double>(n));
  table.add_row({instance.family, util::strf("%zu", n),
                 util::strf("%.2f", epsilon),
                 util::strf("%zu", oracle.size_in_words()),
                 util::strf("%.2f", oracle.size_in_words() / nlogn),
                 util::strf("%.1f", visited_stats.mean()),
                 util::strf("%.1f", query_us),
                 util::strf("%.4f", stretch.mean()),
                 util::strf("%.4f", stretch.max()),
                 util::strf("%.2f", build_s)});
}

}  // namespace

int main() {
  section("E2", "(1+eps)-approximate distance oracle (Thm 2)");
  util::TableWriter table({"family", "n", "eps", "words", "words/nlog2n",
                           "conns/query", "query_us", "stretch_avg",
                           "stretch_max", "build_s"});

  // epsilon sweep at a fixed size (the 1/eps factor of the space bound).
  for (double eps : {1.0, 0.5, 0.25, 0.1})
    run(table, make_triangulation(2048, 21), eps, 300);

  // n sweep at fixed epsilon (the n log n factor).
  for (std::size_t n : {512u, 2048u, 8192u})
    run(table, make_triangulation(n, 23 + n), 0.25, 300);
  for (std::size_t side : {16u, 32u, 64u, 128u})
    run(table, make_grid(side), 0.25, 300);
  for (std::size_t n : {512u, 2048u, 8192u})
    run(table, make_ktree(n, 3, 29 + n), 0.25, 300);
  for (std::size_t n : {1024u, 8192u}) run(table, make_tree(n, 31 + n), 0.25, 300);
  for (std::size_t side : {24u, 48u}) run(table, make_road(side, 37), 0.25, 300);

  table.print(std::cout);
  std::printf(
      "\npaper: space O(k/eps * n log n) words, query O(k/eps * log n),\n"
      "stretch <= 1+eps. words/nlog2n should be ~flat per family+eps;\n"
      "stretch_max must never exceed 1+eps.\n");
  return 0;
}
