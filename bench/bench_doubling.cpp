// E10 — Theorem 8: (k,α)-doubling separable graphs.
//
// The motivating example of §5.3: 3D meshes have no O(1)-path separator
// (E10b measures the greedy path count growing with n) but are (1,2)-
// doubling separable by axis mid-planes. The doubling oracle's space should
// scale like O(τ·n log n) with τ = (α/ε)^{O(α)} and its stretch stay within
// 1+ε.
#include "common.hpp"

#include "doubling/dimension.hpp"
#include "doubling/doubling_oracle.hpp"
#include "sssp/bfs.hpp"
#include "util/rng.hpp"

using namespace pathsep;
using namespace pathsep::bench;

int main() {
  section("E10", "doubling oracle on 3D meshes (Thm 8)");
  {
    util::TableWriter table({"mesh", "n", "eps", "words", "words/nlog2n",
                             "avg_conns", "stretch_avg", "stretch_max",
                             "build_s"});
    struct Case {
      std::size_t nx, ny, nz;
      double eps;
    };
    // Cubic meshes show the n-scaling; the thin 40x40x2 slabs have vertex-
    // to-plane distances large enough (up to ~40) that the lattice nets can
    // actually thin out with epsilon — on small cubes the integer lattice
    // clamps the net spacing to 1 and the oracle is accidentally exact.
    for (const Case c :
         {Case{6, 6, 6, 0.5}, Case{8, 8, 8, 0.5}, Case{12, 12, 12, 0.5},
          Case{16, 16, 16, 0.5}, Case{12, 12, 12, 1.0}, Case{12, 12, 12, 0.25},
          Case{40, 40, 2, 2.0}, Case{40, 40, 2, 1.0}, Case{40, 40, 2, 0.5}}) {
      const graph::Mesh3D mesh = graph::mesh3d(c.nx, c.ny, c.nz);
      const std::size_t n = mesh.graph.num_vertices();
      util::Timer timer;
      const doubling::DoublingOracle oracle(mesh, c.eps);
      const double build_s = timer.elapsed_seconds();

      util::Rng rng(200 + c.nx + c.nz);
      util::OnlineStats stretch;
      for (int i = 0; i < 150; ++i) {
        const Vertex u = static_cast<Vertex>(rng.next_below(n));
        Vertex v = static_cast<Vertex>(rng.next_below(n));
        while (v == u) v = static_cast<Vertex>(rng.next_below(n));
        const sssp::BfsResult bf = sssp::bfs(mesh.graph, u);
        stretch.add(oracle.query(u, v) / static_cast<double>(bf.hops[v]));
      }
      const double nlogn =
          static_cast<double>(n) * std::log2(static_cast<double>(n));
      table.add_row({util::strf("%zux%zux%zu", c.nx, c.ny, c.nz),
                     util::strf("%zu", n), util::strf("%.2f", c.eps),
                     util::strf("%zu", oracle.size_in_words()),
                     util::strf("%.2f", oracle.size_in_words() / nlogn),
                     util::strf("%.1f", oracle.average_connections()),
                     util::strf("%.4f", stretch.mean()),
                     util::strf("%.4f", stretch.max()),
                     util::strf("%.2f", build_s)});
    }
    table.print(std::cout);
  }

  section("E10b", "3D meshes are NOT O(1)-path separable (motivation)");
  {
    util::TableWriter table({"mesh", "n", "greedy_paths", "paths/n^(1/3)"});
    for (std::size_t side : {4u, 6u, 8u, 12u}) {
      const graph::Mesh3D mesh = graph::mesh3d(side, side, side);
      const separator::GreedyPathSeparator finder(7);
      const separator::PathSeparator s = finder.find(mesh.graph);
      const auto report = separator::validate(mesh.graph, s);
      table.add_row(
          {util::strf("%zux%zux%zu", side, side, side),
           util::strf("%zu", mesh.graph.num_vertices()),
           util::strf("%zu", report.path_count),
           util::strf("%.2f", static_cast<double>(report.path_count) /
                                  std::cbrt(static_cast<double>(
                                      mesh.graph.num_vertices())))});
    }
    table.print(std::cout);
  }

  section("E10c", "doubling dimension of the separator planes vs whole mesh");
  {
    util::TableWriter table({"object", "alpha_est", "worst_cover"});
    const graph::Mesh3D mesh = graph::mesh3d(10, 10, 10);
    util::Rng rng(3);
    const auto est3d = doubling::estimate_doubling_dimension(mesh.graph, rng, 10);
    const graph::GridGraph plane = graph::grid(10, 10);
    util::Rng rng2(3);
    const auto est2d =
        doubling::estimate_doubling_dimension(plane.graph, rng2, 10);
    table.add_row({"10x10x10 mesh", util::strf("%.2f", est3d.alpha),
                   util::strf("%zu", est3d.worst_cover)});
    table.add_row({"10x10 plane (separator)", util::strf("%.2f", est2d.alpha),
                   util::strf("%zu", est2d.worst_cover)});
    table.print(std::cout);
    std::printf(
        "\npaper: the separator need not be paths — isometric subgraphs of\n"
        "low doubling dimension (the 2D plane, alpha ~ 2) suffice (P1').\n");
  }
  return 0;
}
