// E4 — stretch-(1+ε) labeled compact routing.
//
// Reports per-vertex table sizes (the scheme's distributed space, which the
// paper bounds polylogarithmically) and the routed stretch over sampled
// pairs, for planar road networks, triangulations, grids and k-trees.
#include "common.hpp"

#include "routing/simulator.hpp"
#include "util/rng.hpp"

using namespace pathsep;
using namespace pathsep::bench;

namespace {

void run(util::TableWriter& table, Instance instance, double epsilon,
         std::size_t pairs) {
  const std::size_t n = instance.graph.num_vertices();
  const hierarchy::DecompositionTree tree(instance.graph, *instance.finder);
  const routing::RoutingScheme scheme(tree, epsilon);

  util::Rng rng(500 + n);
  const routing::RoutingStats stats =
      routing::evaluate_routing(scheme, instance.graph, pairs, rng);

  const double avg_table =
      static_cast<double>(scheme.table_words()) / static_cast<double>(n);
  table.add_row({instance.family, util::strf("%zu", n),
                 util::strf("%.2f", epsilon),
                 util::strf("%.1f", avg_table),
                 util::strf("%zu", scheme.max_table_words()),
                 util::strf("%.4f", stats.stretch.mean()),
                 util::strf("%.4f", stats.stretch.max()),
                 util::strf("%.1f", stats.hops.mean()),
                 util::strf("%zu", stats.failures)});
}

}  // namespace

int main() {
  section("E4", "stretch-(1+eps) compact routing tables");
  util::TableWriter table({"family", "n", "eps", "avg_table_words",
                           "max_table_words", "stretch_avg", "stretch_max",
                           "hops_avg", "failures"});

  for (std::size_t side : {16u, 32u, 64u})
    run(table, make_road(side, 51 + side), 0.25, 200);
  for (std::size_t n : {512u, 2048u, 8192u})
    run(table, make_triangulation(n, 53 + n), 0.25, 200);
  for (std::size_t side : {16u, 32u, 64u}) run(table, make_grid(side), 0.25, 200);
  for (std::size_t n : {512u, 2048u}) run(table, make_ktree(n, 3, 57), 0.25, 200);
  for (double eps : {1.0, 0.5, 0.1}) run(table, make_road(32, 59), eps, 200);

  table.print(std::cout);
  std::printf(
      "\npaper: poly-log per-vertex tables, routed stretch <= 1+eps;\n"
      "stretch_max must never exceed 1+eps and failures must be 0.\n");
  return 0;
}
