// E15 — end-to-end construction throughput of the parallel pipeline.
//
// Measures decomposition-tree build plus label build across thread counts on
// the two heaviest families (grid, planar triangulation), records wall-clock
// seconds — with the label build split into its connection-computation and
// label-assembly stages so regressions are attributable — and hashes the
// serialized labels per thread count to demonstrate the determinism
// guarantee: every thread count must produce the same digest (enforced with
// --require-equal-digests, which exits non-zero on any mismatch). Results go
// to stdout as a table and to --out (default BENCH_build.json) as JSON for
// the repo record.
//
// Usage:
//   bench_build [--out=BENCH_build.json] [--grid-side=320] [--planar-n=60000]
//               [--threads=1,2,4,8] [--epsilon=0.5]
//               [--big-grid-side=0] [--big-threads=1,8]
//               [--require-equal-digests]
//
// --big-grid-side adds a large perturbed-grid instance (side 1024 = 1,048,576
// vertices) measured only at the --big-threads counts, so the million-vertex
// record does not multiply the whole default thread sweep.
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "oracle/labels.hpp"
#include "oracle/serialize.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"

namespace pathsep::bench {
namespace {

/// FNV-1a over the serialized labels — a stable digest of the whole oracle.
std::uint64_t label_digest(const std::vector<oracle::DistanceLabel>& labels) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const oracle::DistanceLabel& label : labels)
    for (std::uint8_t byte : oracle::serialize_label(label)) {
      h ^= byte;
      h *= 1099511628211ULL;
    }
  return h;
}

struct Run {
  std::string family;
  std::size_t n = 0;
  std::size_t threads = 0;
  double tree_seconds = 0;
  double label_seconds = 0;
  double connections_seconds = 0;  ///< projections + portal Dijkstras
  double assemble_seconds = 0;     ///< per-vertex label assembly
  double speedup = 0;  ///< total vs the threads=1 total of the same family
  std::uint64_t digest = 0;
};

Run measure(const Instance& inst, std::size_t threads, double epsilon) {
  Run run;
  run.family = inst.family;
  run.n = inst.graph.num_vertices();
  run.threads = threads;

  hierarchy::DecompositionTree::Options options;
  options.threads = threads;
  util::Timer timer;
  const hierarchy::DecompositionTree tree(inst.graph, *inst.finder, options);
  run.tree_seconds = timer.elapsed_seconds();

  timer.reset();
  oracle::BuildLabelsStats stats;
  const auto labels = oracle::build_labels(tree, epsilon, threads, &stats);
  run.label_seconds = timer.elapsed_seconds();
  run.connections_seconds = stats.connections_seconds;
  run.assemble_seconds = stats.assemble_seconds;
  run.digest = label_digest(labels);
  return run;
}

std::vector<std::size_t> parse_threads(const std::string& spec) {
  std::vector<std::size_t> out;
  std::istringstream in(spec);
  std::string tok;
  while (std::getline(in, tok, ','))
    if (!tok.empty()) out.push_back(std::stoul(tok));
  return out;
}

int run_main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::string out_path = args.get("out", "BENCH_build.json");
  const std::size_t grid_side =
      static_cast<std::size_t>(args.get_int("grid-side", 320));
  const std::size_t planar_n =
      static_cast<std::size_t>(args.get_int("planar-n", 60000));
  const std::size_t big_grid_side =
      static_cast<std::size_t>(args.get_int("big-grid-side", 0));
  const double epsilon = args.get_double("epsilon", 0.5);
  const std::vector<std::size_t> thread_counts =
      parse_threads(args.get("threads", "1,2,4,8"));
  const std::vector<std::size_t> big_thread_counts =
      parse_threads(args.get("big-threads", "1,8"));
  const bool require_equal_digests = args.get_bool("require-equal-digests");
  for (const std::string& flag : args.unused())
    std::fprintf(stderr, "warning: unused flag --%s\n", flag.c_str());

  section("E15", "end-to-end construction: tree + labels vs thread count");
  std::printf("hardware_concurrency=%u default_threads=%zu\n",
              std::thread::hardware_concurrency(), util::default_threads());

  // (instance, thread counts to sweep) — the big grid gets its own, shorter
  // sweep so the million-vertex record doesn't multiply the default matrix.
  std::vector<std::pair<Instance, const std::vector<std::size_t>*>> plan;
  plan.emplace_back(make_grid(grid_side), &thread_counts);
  plan.emplace_back(make_triangulation(planar_n, 12345), &thread_counts);
  if (big_grid_side > 0)
    plan.emplace_back(make_grid(big_grid_side), &big_thread_counts);

  util::TableWriter table(
      {"family", "n", "threads", "tree_s", "conn_s", "asm_s", "labels_s",
       "total_s", "speedup", "digest"});
  std::vector<Run> runs;
  for (const auto& [inst, counts] : plan) {
    double serial_total = 0;
    for (std::size_t threads : *counts) {
      Run run = measure(inst, threads, epsilon);
      const double total = run.tree_seconds + run.label_seconds;
      if (threads == counts->front()) serial_total = total;
      run.speedup = total > 0 ? serial_total / total : 1.0;
      table.add_row({inst.family, std::to_string(run.n),
                     std::to_string(run.threads),
                     util::strf("%.3f", run.tree_seconds),
                     util::strf("%.3f", run.connections_seconds),
                     util::strf("%.3f", run.assemble_seconds),
                     util::strf("%.3f", run.label_seconds),
                     util::strf("%.3f", total), util::strf("%.2f", run.speedup),
                     util::strf("%016llx",
                                static_cast<unsigned long long>(run.digest))});
      runs.push_back(run);
    }
  }
  table.print(std::cout);

  // Determinism cross-check: within one (family, n) instance every thread
  // count must hash to the same bytes.
  bool digests_match = true;
  std::map<std::pair<std::string, std::size_t>, std::uint64_t> first_digest;
  for (const Run& r : runs) {
    const auto key = std::make_pair(r.family, r.n);
    const auto [it, inserted] = first_digest.emplace(key, r.digest);
    if (!inserted && it->second != r.digest) {
      digests_match = false;
      std::fprintf(stderr,
                   "digest mismatch: %s n=%zu threads=%zu got %016llx "
                   "expected %016llx\n",
                   r.family.c_str(), r.n, r.threads,
                   static_cast<unsigned long long>(r.digest),
                   static_cast<unsigned long long>(it->second));
    }
  }

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"bench_build\",\n  \"epsilon\": " << epsilon
      << ",\n  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n  \"default_threads\": " << util::default_threads()
      << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    out << "    {\"family\": \"" << r.family << "\", \"n\": " << r.n
        << ", \"threads\": " << r.threads << ", \"tree_seconds\": "
        << r.tree_seconds << ", \"connections_seconds\": "
        << r.connections_seconds << ", \"assemble_seconds\": "
        << r.assemble_seconds << ", \"label_seconds\": " << r.label_seconds
        << ", \"speedup_vs_first\": " << r.speedup << ", \"label_digest\": \""
        << std::hex << r.digest << std::dec << "\"}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  if (require_equal_digests && !digests_match) {
    std::fprintf(stderr, "--require-equal-digests: FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pathsep::bench

int main(int argc, char** argv) { return pathsep::bench::run_main(argc, argv); }
