// E3 — Theorem 2 (distributed form): (1+ε)-approximate distance labels.
//
// Reports max/avg per-vertex label size in words and bits against the
// O(k/ε · log n) claim, and verifies that label-only queries stay within
// stretch 1+ε on sampled pairs. The fit line at the end regresses the
// average label size on log2(n): the paper predicts a straight line.
#include "common.hpp"

#include "oracle/path_oracle.hpp"
#include "oracle/serialize.hpp"
#include "sssp/dijkstra.hpp"
#include "util/rng.hpp"

using namespace pathsep;
using namespace pathsep::bench;

namespace {

struct Row {
  std::size_t n;
  double avg_words;
};

void run(util::TableWriter& table, std::vector<Row>* fit_rows,
         Instance instance, double epsilon) {
  const std::size_t n = instance.graph.num_vertices();
  const hierarchy::DecompositionTree tree(instance.graph, *instance.finder);
  const oracle::PathOracle oracle(tree, epsilon);

  util::Rng rng(100 + n);
  util::OnlineStats stretch;
  for (std::size_t i = 0; i < 200; ++i) {
    const Vertex u = static_cast<Vertex>(rng.next_below(n));
    Vertex v = static_cast<Vertex>(rng.next_below(n));
    while (v == u) v = static_cast<Vertex>(rng.next_below(n));
    const Weight est = oracle::query_labels(oracle.label(u), oracle.label(v));
    const Weight truth = sssp::distance(instance.graph, u, v);
    if (truth > 0) stretch.add(est / truth);
  }

  const double avg = oracle.average_label_words();
  const std::size_t max_words = oracle.max_label_words();
  // Honest wire cost: varint-encoded binary labels (oracle/serialize.hpp).
  util::OnlineStats wire_bits;
  for (Vertex v = 0; v < n; ++v)
    wire_bits.add(static_cast<double>(serialized_bits(oracle.label(v))));
  const double log2n = std::log2(static_cast<double>(n));
  table.add_row({instance.family, util::strf("%zu", n),
                 util::strf("%.2f", epsilon), util::strf("%.1f", avg),
                 util::strf("%zu", max_words),
                 util::strf("%.0f", wire_bits.mean()),
                 util::strf("%.2f", avg / log2n),
                 util::strf("%.4f", stretch.max())});
  if (fit_rows) fit_rows->push_back({n, avg});
}

}  // namespace

int main() {
  section("E3", "(1+eps)-approximate distance labels (Thm 2)");
  util::TableWriter table({"family", "n", "eps", "avg_words", "max_words",
                           "avg_wire_bits", "words/log2n", "stretch_max"});

  std::vector<Row> planar_rows;
  for (std::size_t n : {256u, 1024u, 4096u, 16384u})
    run(table, &planar_rows, make_triangulation(n, 41 + n), 0.25);
  for (std::size_t side : {16u, 32u, 64u, 128u})
    run(table, nullptr, make_grid(side), 0.25);
  for (std::size_t n : {512u, 2048u, 8192u})
    run(table, nullptr, make_ktree(n, 3, 43 + n), 0.25);
  for (double eps : {1.0, 0.5, 0.25, 0.1})
    run(table, nullptr, make_triangulation(2048, 47), eps);
  table.print(std::cout);

  // Regression of avg label words on log2 n for the planar sweep.
  std::vector<double> xs, ys;
  for (const Row& row : planar_rows) {
    xs.push_back(std::log2(static_cast<double>(row.n)));
    ys.push_back(row.avg_words);
  }
  const util::LinearFit fit = util::fit_linear(xs, ys);
  std::printf(
      "\nplanar label size vs log2(n): words ~= %.2f + %.2f * log2(n) "
      "(r2 = %.3f)\npaper: O(k/eps * log n) words per label -> linear in "
      "log n with r2 near 1.\n",
      fit.intercept, fit.slope, fit.r2);
  return 0;
}
