// E14 — query service throughput: serial dispatch vs. the pooled batched
// engine vs. the pooled engine with its sharded LRU result cache.
//
// Workload: a planar grid oracle (the paper's canonical 1-path-separable
// family) serving a fixed number of (u, v) queries, drawn either uniformly
// or Zipf-skewed from a fixed pool of distinct pairs — the repeat-heavy
// popularity distribution an object-location service sees. Serial answers
// on one thread straight from PathOracle::query; pooled fans batches out to
// the persistent worker pool; cached adds the result cache on top (warmed
// by one pass). Speedups are relative to serial QPS on the same workload.
#include "common.hpp"

#include "service/query_engine.hpp"
#include "util/parallel.hpp"

namespace pathsep::bench {
namespace {

struct Workload {
  std::string name;
  std::vector<service::Query> queries;  ///< the sequence actually served
};

Workload make_workload(const std::string& name, std::size_t distinct_pairs,
                       double zipf_s, std::size_t num_queries, std::size_t n,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<service::Query> pool;
  pool.reserve(distinct_pairs);
  for (std::size_t i = 0; i < distinct_pairs; ++i)
    pool.push_back({static_cast<Vertex>(rng.next_below(n)),
                    static_cast<Vertex>(rng.next_below(n))});
  const util::ZipfSampler zipf(distinct_pairs, zipf_s);
  Workload w{name, {}};
  w.queries.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i)
    w.queries.push_back(pool[zipf.sample(rng)]);
  return w;
}

double run_serial(const oracle::PathOracle& oracle, const Workload& w,
                  double* seconds) {
  util::Timer timer;
  Weight sink = 0;
  for (const service::Query& q : w.queries) sink += oracle.query(q.u, q.v);
  util::do_not_optimize(sink);
  *seconds = timer.elapsed_seconds();
  return static_cast<double>(w.queries.size()) / *seconds;
}

double run_engine(service::QueryEngine& engine, const Workload& w,
                  std::size_t batch, double* seconds) {
  util::Timer timer;
  for (std::size_t begin = 0; begin < w.queries.size(); begin += batch) {
    const std::size_t end = std::min(begin + batch, w.queries.size());
    const auto results = engine.query_batch(
        std::span<const service::Query>(w.queries).subspan(begin, end - begin));
    util::do_not_optimize(results);
  }
  *seconds = timer.elapsed_seconds();
  return static_cast<double>(w.queries.size()) / *seconds;
}

}  // namespace
}  // namespace pathsep::bench

int main() {
  using namespace pathsep;
  using namespace pathsep::bench;

  const std::size_t side = 40;          // 1600-vertex planar grid
  const double eps = 0.25;
  const std::size_t num_queries = 400000;
  const std::size_t distinct_pairs = 200000;
  const std::size_t batch = 1024;
  const std::size_t threads = util::default_threads();

  section("E14", "query service throughput (serial vs pooled vs cached)");
  std::printf("grid %zux%zu, eps=%.2f, %zu queries, %zu distinct pairs, "
              "batch %zu, %zu worker threads (PATHSEP_THREADS overrides)\n",
              side, side, eps, num_queries, distinct_pairs, batch, threads);

  Instance inst = make_grid(side);
  const hierarchy::DecompositionTree tree(inst.graph, *inst.finder);
  auto snapshot =
      std::make_shared<const oracle::PathOracle>(tree, eps);
  const std::size_t n = snapshot->num_vertices();

  const Workload uniform =
      make_workload("uniform", distinct_pairs, 0.0, num_queries, n, 7);
  const Workload zipf =
      make_workload("zipf-1.1", distinct_pairs, 1.1, num_queries, n, 7);

  util::TableWriter table({"mode", "workload", "threads", "cache", "qps",
                           "speedup", "hit_rate", "p99_us"});

  for (const Workload* w : {&uniform, &zipf}) {
    double serial_s = 0;
    const double serial_qps = run_serial(*snapshot, *w, &serial_s);
    table.add_row({"serial", w->name, "1", "off",
                   util::strf("%.0f", serial_qps), "1.00x", "-", "-"});

    service::QueryEngineOptions pooled_opts;
    pooled_opts.threads = threads;
    pooled_opts.cache_capacity = 0;
    service::QueryEngine pooled(snapshot, pooled_opts);
    double pooled_s = 0;
    const double pooled_qps = run_engine(pooled, *w, batch, &pooled_s);
    table.add_row(
        {"pooled", w->name, util::strf("%zu", threads), "off",
         util::strf("%.0f", pooled_qps),
         util::strf("%.2fx", pooled_qps / serial_qps), "-",
         util::strf("%.1f",
                    pooled.metrics().histogram("query_latency_ns")
                            .percentile_nanos(0.99) /
                        1000.0)});

    service::QueryEngineOptions cached_opts;
    cached_opts.threads = threads;
    cached_opts.cache_capacity = 1 << 16;
    service::QueryEngine cached(snapshot, cached_opts);
    double warm_s = 0;
    run_engine(cached, *w, batch, &warm_s);  // warm the LRU
    const std::uint64_t warm_hits = cached.cache().hits();
    const std::uint64_t warm_misses = cached.cache().misses();
    double cached_s = 0;
    const double cached_qps = run_engine(cached, *w, batch, &cached_s);
    const double warm_rate =
        static_cast<double>(cached.cache().hits() - warm_hits) /
        static_cast<double>((cached.cache().hits() - warm_hits) +
                            (cached.cache().misses() - warm_misses));
    table.add_row(
        {"cached", w->name, util::strf("%zu", threads), "65536",
         util::strf("%.0f", cached_qps),
         util::strf("%.2fx", cached_qps / serial_qps),
         util::strf("%.1f%%", 100.0 * warm_rate),
         util::strf("%.1f",
                    cached.metrics().histogram("query_latency_ns")
                            .percentile_nanos(0.99) /
                        1000.0)});
  }

  table.print(std::cout);
  std::printf(
      "\nnotes: pooled speedup scales with hardware threads (this run: %zu); "
      "cached hit-rate column is measured after a full warming pass.\n",
      threads);
  return 0;
}
