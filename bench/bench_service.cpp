// E14 — query service throughput: serial dispatch vs. the pooled batched
// engine vs. the pooled engine with its sharded LRU result cache, and the
// shard-per-core ShardedEngine (lock-free MPSC intake + epoch-swapped
// snapshots) at 1/2/4/8 shard workers on a >=100k-vertex grid.
//
// Workload: a planar grid oracle (the paper's canonical 1-path-separable
// family) serving a fixed number of (u, v) queries, drawn either uniformly
// or Zipf-skewed from a fixed pool of distinct pairs — the repeat-heavy
// popularity distribution an object-location service sees. Serial answers
// on one thread straight from PathOracle::query; pooled fans batches out to
// the persistent worker pool; cached adds the result cache on top (warmed
// by one pass); sharded routes each pair to its owning worker through the
// intake rings. Speedups are relative to serial QPS on the same workload.
// Every engine row carries the PR 8 observability surface: windowed
// qps/p50/p99, slow-log exemplars, and the answers_total-level family (which
// the bench asserts sums to queries_total). Sharded rows additionally
// cross-check an order-sensitive FNV digest of the full answer stream — any
// divergence across shard counts is a hard failure (nonzero exit).
//
// Beyond closed-loop throughput the bench measures:
//   - open-loop arrival (E14d): batches submitted on a fixed schedule via
//     ShardedEngine::submit_batch, latency measured from the *scheduled*
//     arrival (not the submit), so queueing delay under load is visible —
//     p50/p99 reported at 0.5/0.7/0.9 of the measured closed-loop peak.
//   - the network path (E14e): an in-process epoll NetServer serving the
//     binary wire protocol on localhost, driven by the same loadgen loop
//     that `bench_service --loadgen --connect=HOST:PORT` runs against an
//     external server (scripts/serve_smoke.sh wires the two together).
//   - a tracing-on row (E14c): the sharded engine serving with spans
//     enabled; the bench asserts at least one admitted slow-log entry
//     carries a nonzero exemplar span id (tail sampling actually fired).
//
// Also measures the observability layer's hot-path cost (E14b): the same
// serial query loop re-run with per-query histogram recording plus a
// per-batch span, tracing off then on. Results land in --out (default
// BENCH_service.json) for the repo record. --quick shrinks every dimension
// for smoke runs.
#include "common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "service/net.hpp"
#include "service/net_server.hpp"
#include "service/query_engine.hpp"
#include "service/sharded_engine.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"

namespace pathsep::bench {
namespace {

struct Workload {
  std::string name;
  std::vector<service::Query> queries;  ///< the sequence actually served
};

Workload make_workload(const std::string& name, std::size_t distinct_pairs,
                       double zipf_s, std::size_t num_queries, std::size_t n,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<service::Query> pool;
  pool.reserve(distinct_pairs);
  for (std::size_t i = 0; i < distinct_pairs; ++i)
    pool.push_back({static_cast<Vertex>(rng.next_below(n)),
                    static_cast<Vertex>(rng.next_below(n))});
  const util::ZipfSampler zipf(distinct_pairs, zipf_s);
  Workload w{name, {}};
  w.queries.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i)
    w.queries.push_back(pool[zipf.sample(rng)]);
  return w;
}

/// Order-sensitive FNV-1a over the raw answer bytes: equal streams <=> equal
/// digests, so one u64 cross-checks exactness across engines/shard counts.
struct FnvDigest {
  std::uint64_t h = 1469598103934665603ULL;
  void add(const Weight* values, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t bits;
      std::memcpy(&bits, &values[i], sizeof(bits));
      for (int shift = 0; shift < 64; shift += 8) {
        h ^= (bits >> shift) & 0xFFu;
        h *= 1099511628211ULL;
      }
    }
  }
};

double percentile(std::vector<double>& sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place.size() - 1));
  return sorted_in_place[idx];
}

/// With `lat` null this is the raw loop (the overhead section's baseline);
/// with a histogram it times every query, so the serial row reports a real
/// p99 instead of 0.00 — the same per-query timer the engine rows pay.
double run_serial(const oracle::PathOracle& oracle, const Workload& w,
                  double* seconds, obs::LatencyHistogram* lat = nullptr) {
  util::Timer timer;
  Weight sink = 0;
  if (lat) {
    for (const service::Query& q : w.queries) {
      const util::Timer query_timer;
      sink += oracle.query(q.u, q.v);
      lat->record(query_timer.elapsed_ns());
    }
  } else {
    for (const service::Query& q : w.queries) sink += oracle.query(q.u, q.v);
  }
  util::do_not_optimize(sink);
  *seconds = timer.elapsed_seconds();
  return static_cast<double>(w.queries.size()) / *seconds;
}

std::uint64_t serial_digest(const oracle::PathOracle& oracle,
                            const Workload& w) {
  FnvDigest digest;
  for (const service::Query& q : w.queries) {
    const Weight d = oracle.query(q.u, q.v);
    digest.add(&d, 1);
  }
  return digest.h;
}

double run_engine(service::QueryEngine& engine, const Workload& w,
                  std::size_t batch, double* seconds) {
  util::Timer timer;
  for (std::size_t begin = 0; begin < w.queries.size(); begin += batch) {
    const std::size_t end = std::min(begin + batch, w.queries.size());
    const auto results = engine.query_batch(
        std::span<const service::Query>(w.queries).subspan(begin, end - begin));
    util::do_not_optimize(results);
  }
  *seconds = timer.elapsed_seconds();
  return static_cast<double>(w.queries.size()) / *seconds;
}

/// The serial loop of run_serial plus the obs-layer work the engine adds to
/// the query hot path: the cost-tracking query (query_stats instead of
/// query), three counter increments (total, miss, per-level answer), the
/// slow-log admission-floor load, and one trace span per batch — exactly
/// the untimed recording of the shared AnswerPath. With time_each_query the
/// clock-read flavor is added too: the per-query latency record, the
/// windowed-histogram record (it reuses the same t1 reading), and slow-log
/// admission for tail queries. That cost is clock reads, not obs recording,
/// and the bench reports it as a separate number. (The engines now chain
/// timestamps across a chunk — n+1 reads per n queries — so their clock
/// cost is roughly *half* this serial per-query-timer number; that is what
/// fixed the pooled zipf row that sat below 1.0x before PR 10.)
double run_serial_instrumented(const oracle::PathOracle& oracle,
                               const Workload& w, std::size_t batch,
                               obs::MetricsRegistry& registry,
                               bool time_each_query) {
  obs::Counter& total = registry.counter("queries_total");
  obs::Counter& misses = registry.counter("cache_misses");
  obs::LatencyHistogram& lat = registry.histogram("query_latency_ns");
  const std::size_t levels = std::max<std::size_t>(1, oracle.num_levels());
  std::vector<obs::Counter*> answers;
  answers.reserve(levels);
  for (std::size_t level = 0; level < levels; ++level)
    answers.push_back(
        &registry.counter("answers_total", {{"level", std::to_string(level)}}));
  obs::Counter& unreachable =
      registry.counter("answers_total", {{"level", "unreachable"}});
  obs::Counter& self = registry.counter("answers_total", {{"level", "self"}});
  obs::WindowedHistogram window;
  obs::SlowLog slowlog;
  std::uint64_t floor_sink = 0;  // keeps the untimed floor load observable
  util::Timer timer;
  Weight sink = 0;
  for (std::size_t begin = 0; begin < w.queries.size(); begin += batch) {
    PATHSEP_SPAN("bench.batch");
    const std::size_t end = std::min(begin + batch, w.queries.size());
    for (std::size_t i = begin; i < end; ++i) {
      const service::Query& q = w.queries[i];
      oracle::QueryStats stats;
      std::uint64_t t0 = 0;
      if (time_each_query) t0 = obs::window_now_ns();
      const Weight d = oracle.query_stats(q.u, q.v, stats);
      sink += d;
      total.inc();
      misses.inc();
      if (q.u == q.v) {
        self.inc();
      } else if (d == graph::kInfiniteWeight) {
        unreachable.inc();
      } else {
        answers[std::min(
                    levels - 1,
                    static_cast<std::size_t>(
                        std::max<std::int32_t>(0, stats.win_level)))]
            ->inc();
      }
      if (time_each_query) {
        const std::uint64_t t1 = obs::window_now_ns();
        const std::uint64_t elapsed = t1 - t0;
        lat.record(elapsed);
        window.record(elapsed, t1);
        if (elapsed >= slowlog.admission_floor()) {
          obs::SlowQuery slow;
          slow.u = q.u;
          slow.v = q.v;
          slow.latency_ns = elapsed;
          slow.when_ns = t1;
          slow.entries_scanned = stats.entries_scanned;
          slow.win_node = stats.win_node;
          slow.win_level = stats.win_level;
          slowlog.record(slow);
        }
      } else {
        floor_sink += slowlog.admission_floor();
      }
    }
  }
  util::do_not_optimize(sink);
  util::do_not_optimize(floor_sink);
  return static_cast<double>(w.queries.size()) / timer.elapsed_seconds();
}

struct RunRecord {
  std::string mode, workload;
  std::size_t threads = 1;
  double qps = 0, speedup = 1.0, p99_us = 0;
  bool has_window = false;  ///< engine modes carry a windowed-tail view
  obs::WindowedHistogram::View window{};
};

// --------------------------------------------------------- sharded closed loop

struct ShardedRow {
  std::size_t shards = 1;
  double qps = 0, speedup = 1.0, p99_us = 0;
  std::uint64_t digest = 0;
  obs::WindowedHistogram::View window{};
  bool answers_sum_ok = true;
};

ShardedRow run_sharded(
    const std::shared_ptr<const oracle::PathOracle>& snapshot,
    const Workload& w, std::size_t batch, std::size_t shards,
    double serial_qps) {
  service::ShardedEngineOptions opts;
  opts.shards = shards;
  opts.cache_capacity = 0;
  service::ShardedEngine engine(snapshot, opts);

  std::vector<Weight> results(batch);
  FnvDigest digest;
  util::Timer timer;
  for (std::size_t begin = 0; begin < w.queries.size(); begin += batch) {
    const std::size_t size = std::min(batch, w.queries.size() - begin);
    engine.query_batch_into(
        std::span<const service::Query>(w.queries).subspan(begin, size),
        results.data());
    digest.add(results.data(), size);
  }
  const double seconds = timer.elapsed_seconds();

  ShardedRow row;
  row.shards = engine.num_shards();
  row.qps = static_cast<double>(w.queries.size()) / seconds;
  row.speedup = row.qps / serial_qps;
  row.p99_us =
      engine.metrics().histogram("query_latency_ns").percentile_nanos(0.99) /
      1000.0;
  row.digest = digest.h;
  row.window = engine.window().view(obs::window_now_ns());
  std::uint64_t answers_sum = 0, queries_total = 0;
  for (const obs::MetricSample& s : engine.metrics().snapshot()) {
    if (s.kind != obs::MetricKind::kCounter) continue;
    if (s.name == "answers_total") answers_sum += s.counter_value;
    if (s.name == "queries_total") queries_total = s.counter_value;
  }
  row.answers_sum_ok =
      answers_sum == queries_total && queries_total == w.queries.size();
  return row;
}

// ------------------------------------------------------------ open-loop rows

struct OpenLoopRow {
  double offered_qps = 0, achieved_qps = 0;
  double p50_us = 0, p99_us = 0;
  std::size_t queries = 0;
};

/// Submits `batch`-sized slices on a fixed arrival schedule and measures
/// completion latency from the *scheduled* arrival time — a batch that
/// queues behind a backlog is charged its queueing delay even though the
/// submit itself happened late (the standard coordinated-omission fix).
OpenLoopRow run_open_loop(service::ShardedEngine& engine, const Workload& w,
                          std::size_t batch, double offered_qps) {
  struct Inflight {
    std::atomic<std::uint32_t> remaining{0};
    std::uint64_t scheduled_ns = 0;
  };
  const std::size_t total = w.queries.size();
  std::vector<Weight> results(total);
  std::deque<std::unique_ptr<Inflight>> inflight;
  std::vector<double> latencies_us;
  latencies_us.reserve(total / batch + 2);
  const double interval_ns =
      1e9 * static_cast<double>(batch) / offered_qps;

  const std::uint64_t t_start = obs::window_now_ns();
  std::uint64_t last_done = t_start;
  auto harvest = [&inflight, &latencies_us, &last_done](bool block) {
    while (!inflight.empty()) {
      Inflight& front = *inflight.front();
      std::uint32_t left = front.remaining.load(std::memory_order_acquire);
      if (left != 0) {
        if (!block) return;
        do {
          front.remaining.wait(left, std::memory_order_acquire);
        } while ((left = front.remaining.load(std::memory_order_acquire)) !=
                 0);
      }
      const std::uint64_t now = obs::window_now_ns();
      last_done = now;
      latencies_us.push_back(static_cast<double>(now - front.scheduled_ns) /
                             1e3);
      inflight.pop_front();
      if (block) return;  // freed one slot; caller decides whether to block on
    }                     // the next
  };

  std::size_t k = 0;
  for (std::size_t begin = 0; begin < total; begin += batch, ++k) {
    const std::size_t size = std::min(batch, total - begin);
    const std::uint64_t scheduled =
        t_start + static_cast<std::uint64_t>(interval_ns *
                                             static_cast<double>(k));
    for (;;) {
      if (obs::window_now_ns() >= scheduled) break;
      harvest(/*block=*/false);
      const std::uint64_t now = obs::window_now_ns();
      if (now >= scheduled) break;
      const std::uint64_t ahead = scheduled - now;
      if (ahead > 200'000)
        std::this_thread::sleep_for(std::chrono::nanoseconds(ahead - 100'000));
      else
        std::this_thread::yield();
    }
    auto entry = std::make_unique<Inflight>();
    entry->scheduled_ns = scheduled;
    entry->remaining.store(static_cast<std::uint32_t>(size),
                           std::memory_order_relaxed);
    engine.submit_batch(
        std::span<const service::Query>(w.queries).subspan(begin, size),
        results.data() + begin, &entry->remaining);
    inflight.push_back(std::move(entry));
    harvest(/*block=*/false);
    while (inflight.size() > 128) harvest(/*block=*/true);
  }
  while (!inflight.empty()) harvest(/*block=*/true);
  util::do_not_optimize(results);

  OpenLoopRow row;
  row.offered_qps = offered_qps;
  row.queries = total;
  const double seconds =
      static_cast<double>(std::max<std::uint64_t>(last_done - t_start, 1)) /
      1e9;
  row.achieved_qps = static_cast<double>(total) / seconds;
  row.p50_us = percentile(latencies_us, 0.50);
  row.p99_us = percentile(latencies_us, 0.99);
  return row;
}

// -------------------------------------------------------------- network rows

struct NetRow {
  double qps = 0, p50_us = 0, p99_us = 0;
  std::uint64_t frames = 0;
  std::uint64_t digest = 0;
};

/// Closed-loop wire-protocol load generator: frames of `batch` pairs, one
/// round-trip latency sample per frame. The digest covers every distance in
/// arrival order, so the caller can cross-check against a local oracle.
NetRow run_net_loadgen(const std::string& host, std::uint16_t port,
                       const Workload& w, std::size_t batch) {
  service::wire::NetClient client;
  client.connect(host, port);
  std::vector<Weight> distances;
  std::vector<double> latencies_us;
  FnvDigest digest;
  NetRow row;
  util::Timer timer;
  for (std::size_t begin = 0; begin < w.queries.size(); begin += batch) {
    const std::size_t size = std::min(batch, w.queries.size() - begin);
    const util::Timer frame_timer;
    client.query_batch(
        std::span<const service::Query>(w.queries).subspan(begin, size),
        distances);
    latencies_us.push_back(static_cast<double>(frame_timer.elapsed_ns()) /
                           1e3);
    digest.add(distances.data(), distances.size());
    ++row.frames;
  }
  row.qps =
      static_cast<double>(w.queries.size()) / timer.elapsed_seconds();
  row.p50_us = percentile(latencies_us, 0.50);
  row.p99_us = percentile(latencies_us, 0.99);
  row.digest = digest.h;
  return row;
}

std::string hex64(std::uint64_t value) {
  return util::strf("%016llx", static_cast<unsigned long long>(value));
}

// ------------------------------------------------------------- loadgen mode

/// `bench_service --loadgen --connect=HOST:PORT` — drive an external server
/// (examples/query_server --serve) over the wire protocol. With --verify the
/// same deterministic grid oracle is built locally and the answer digest
/// must match (scripts/serve_smoke.sh relies on this). Exits nonzero on any
/// mismatch.
int run_loadgen_cli(const util::Args& args) {
  const std::string connect = args.get("connect", "127.0.0.1:9917");
  const std::size_t colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect expects HOST:PORT, got %s\n",
                 connect.c_str());
    return 2;
  }
  const std::string host = connect.substr(0, colon);
  const auto port =
      static_cast<std::uint16_t>(std::stoi(connect.substr(colon + 1)));
  const auto side = static_cast<std::size_t>(args.get_int("side", 40));
  const double eps = args.get_double("eps", 0.25);
  const auto num_queries =
      static_cast<std::size_t>(args.get_int("queries", 50000));
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 512));
  const bool verify = args.get_bool("verify");

  const std::size_t n = side * side;
  const Workload w = make_workload("loadgen", std::max<std::size_t>(
                                                  1, num_queries / 2),
                                   0.0, num_queries, n, 7);
  std::printf("loadgen: %s:%u, %zu queries (grid %zux%zu), batch %zu\n",
              host.c_str(), port, num_queries, side, side, batch);
  const NetRow row = run_net_loadgen(host, port, w, batch);
  std::printf("loadgen: %.0f qps over the wire, frame p50 %.1f us, "
              "p99 %.1f us, %llu frames, digest %s\n",
              row.qps, row.p50_us, row.p99_us,
              static_cast<unsigned long long>(row.frames),
              hex64(row.digest).c_str());

  if (verify) {
    // The server built its snapshot from the same deterministic recipe
    // (grid side + eps), so answers must be byte-identical.
    Instance inst = make_grid(side);
    const hierarchy::DecompositionTree tree(inst.graph, *inst.finder);
    const oracle::PathOracle local(tree, eps);
    const std::uint64_t expected = serial_digest(local, w);
    if (expected != row.digest) {
      std::fprintf(stderr,
                   "loadgen: VERIFY FAILED — local digest %s != wire %s\n",
                   hex64(expected).c_str(), hex64(row.digest).c_str());
      return 1;
    }
    std::printf("loadgen: verify OK — wire answers match the local oracle\n");
  }
  return 0;
}

}  // namespace
}  // namespace pathsep::bench

int main(int argc, char** argv) {
  using namespace pathsep;
  using namespace pathsep::bench;

  util::Args args(argc, argv);
  if (args.get_bool("loadgen")) return run_loadgen_cli(args);

  const bool quick = args.get_bool("quick");
  const std::string out_path = args.get("out", "BENCH_service.json");
  const std::size_t side = quick ? 24 : 40;  // E14 small grid
  const double eps = 0.25;
  const std::size_t num_queries = quick ? 40000 : 400000;
  const std::size_t distinct_pairs = quick ? 20000 : 200000;
  const std::size_t batch = 1024;
  const std::size_t threads = util::default_threads();
  // The sharded/network sections run on a separate >=100k-vertex snapshot
  // (acceptance floor); --quick shrinks it to keep smoke runs under a second.
  const std::size_t big_side = quick ? 60 : 320;
  const std::size_t big_queries = quick ? 20000 : 200000;
  int exit_code = 0;

  section("E14", "query service throughput (serial vs pooled vs cached)");
  std::printf("grid %zux%zu, eps=%.2f, %zu queries, %zu distinct pairs, "
              "batch %zu, %zu worker threads (PATHSEP_THREADS overrides)\n",
              side, side, eps, num_queries, distinct_pairs, batch, threads);

  Instance inst = make_grid(side);
  const hierarchy::DecompositionTree tree(inst.graph, *inst.finder);
  auto snapshot =
      std::make_shared<const oracle::PathOracle>(tree, eps);
  const std::size_t n = snapshot->num_vertices();

  const Workload uniform =
      make_workload("uniform", distinct_pairs, 0.0, num_queries, n, 7);
  const Workload zipf =
      make_workload("zipf-1.1", distinct_pairs, 1.1, num_queries, n, 7);

  util::TableWriter table({"mode", "workload", "threads", "cache", "qps",
                           "speedup", "hit_rate", "p99_us"});
  std::vector<RunRecord> records;
  std::string engine_metrics_json = "{}";
  std::string windowed_json = "{}";
  std::string slowlog_json = "[]";
  std::uint64_t answers_sum = 0, answers_queries = 0;

  for (const Workload* w : {&uniform, &zipf}) {
    double serial_s = 0;
    obs::LatencyHistogram serial_lat;
    const double serial_qps = run_serial(*snapshot, *w, &serial_s, &serial_lat);
    const double serial_p99_us = serial_lat.percentile_nanos(0.99) / 1000.0;
    table.add_row({"serial", w->name, "1", "off",
                   util::strf("%.0f", serial_qps), "1.00x", "-",
                   util::strf("%.1f", serial_p99_us)});
    records.push_back({"serial", w->name, 1, serial_qps, 1.0, serial_p99_us});

    service::QueryEngineOptions pooled_opts;
    pooled_opts.threads = threads;
    pooled_opts.cache_capacity = 0;
    service::QueryEngine pooled(snapshot, pooled_opts);
    double pooled_s = 0;
    const double pooled_qps = run_engine(pooled, *w, batch, &pooled_s);
    const double pooled_p99_us =
        pooled.metrics().histogram("query_latency_ns").percentile_nanos(0.99) /
        1000.0;
    table.add_row({"pooled", w->name, util::strf("%zu", threads), "off",
                   util::strf("%.0f", pooled_qps),
                   util::strf("%.2fx", pooled_qps / serial_qps), "-",
                   util::strf("%.1f", pooled_p99_us)});
    records.push_back({"pooled", w->name, threads, pooled_qps,
                       pooled_qps / serial_qps, pooled_p99_us, true,
                       pooled.window().view(obs::window_now_ns())});
    engine_metrics_json = obs::metrics_to_json(pooled.metrics().snapshot());
    windowed_json = obs::window_to_json(records.back().window);
    slowlog_json = obs::slowlog_to_json(pooled.slowlog().snapshot());
    // Attribution invariant the exporter tests pin down: the answers_total
    // family (levels + cached/self/unreachable) sums to queries_total.
    answers_sum = 0;
    answers_queries = 0;
    for (const obs::MetricSample& s : pooled.metrics().snapshot()) {
      if (s.kind != obs::MetricKind::kCounter) continue;
      if (s.name == "answers_total") answers_sum += s.counter_value;
      if (s.name == "queries_total") answers_queries = s.counter_value;
    }

    service::QueryEngineOptions cached_opts;
    cached_opts.threads = threads;
    cached_opts.cache_capacity = 1 << 16;
    service::QueryEngine cached(snapshot, cached_opts);
    double warm_s = 0;
    run_engine(cached, *w, batch, &warm_s);  // warm the LRU
    const std::uint64_t warm_hits = cached.cache().hits();
    const std::uint64_t warm_misses = cached.cache().misses();
    double cached_s = 0;
    const double cached_qps = run_engine(cached, *w, batch, &cached_s);
    const double warm_rate =
        static_cast<double>(cached.cache().hits() - warm_hits) /
        static_cast<double>((cached.cache().hits() - warm_hits) +
                            (cached.cache().misses() - warm_misses));
    const double cached_p99_us =
        cached.metrics().histogram("query_latency_ns").percentile_nanos(0.99) /
        1000.0;
    table.add_row({"cached", w->name, util::strf("%zu", threads), "65536",
                   util::strf("%.0f", cached_qps),
                   util::strf("%.2fx", cached_qps / serial_qps),
                   util::strf("%.1f%%", 100.0 * warm_rate),
                   util::strf("%.1f", cached_p99_us)});
    records.push_back({"cached", w->name, threads, cached_qps,
                       cached_qps / serial_qps, cached_p99_us, true,
                       cached.window().view(obs::window_now_ns())});
  }

  table.print(std::cout);
  std::printf(
      "\nnotes: pooled speedup scales with hardware threads (this run: %zu); "
      "cached hit-rate column is measured after a full warming pass; batches "
      "at or below the adaptive inline cutoff are answered on the caller's "
      "thread with chained timestamps.\n",
      threads);

  // ---- Instrumentation overhead: raw serial loop vs. the same loop with
  // per-query obs recording, tracing off then on. Best of 3 reps each to
  // keep the percentages from reflecting scheduler noise.
  section("E14b", "observability hot-path overhead (serial query loop)");
  const int reps = quick ? 1 : 3;
  double raw_qps = 0, instr_qps = 0, tracing_qps = 0, timed_qps = 0;
  obs::set_trace_enabled(false);
  for (int r = 0; r < reps; ++r) {
    double s = 0;
    raw_qps = std::max(raw_qps, run_serial(*snapshot, uniform, &s));
  }
  for (int r = 0; r < reps; ++r) {
    obs::MetricsRegistry registry;
    instr_qps = std::max(instr_qps,
                         run_serial_instrumented(*snapshot, uniform, batch,
                                                 registry, false));
  }
  obs::set_trace_enabled(true);
  for (int r = 0; r < reps; ++r) {
    obs::MetricsRegistry registry;
    tracing_qps = std::max(tracing_qps,
                           run_serial_instrumented(*snapshot, uniform, batch,
                                                   registry, false));
  }
  obs::set_trace_enabled(false);
  const std::size_t spans_recorded = obs::drain_spans().size();
  for (int r = 0; r < reps; ++r) {
    obs::MetricsRegistry registry;
    timed_qps = std::max(timed_qps,
                         run_serial_instrumented(*snapshot, uniform, batch,
                                                 registry, true));
  }
  const double overhead_disabled_pct = 100.0 * (1.0 - instr_qps / raw_qps);
  const double overhead_tracing_pct = 100.0 * (1.0 - tracing_qps / raw_qps);
  const double per_query_timing_pct = 100.0 * (1.0 - timed_qps / raw_qps);
  std::printf(
      "raw %.0f qps; obs recording (tracing off) %.0f qps (%+.2f%%); "
      "tracing on %.0f qps (%+.2f%%), %zu spans; with the service's "
      "per-query latency timer %.0f qps (%+.2f%%)\n",
      raw_qps, instr_qps, overhead_disabled_pct, tracing_qps,
      overhead_tracing_pct, spans_recorded, timed_qps, per_query_timing_pct);

  // ---- E14c: shard-per-core engine on a production-sized snapshot, with
  // the digest cross-check and a tracing-on row.
  section("E14c", "sharded engine (lock-free intake, epoch snapshots)");
  std::printf("building grid %zux%zu (n=%zu) snapshot...\n", big_side,
              big_side, big_side * big_side);
  Instance big_inst = make_grid(big_side);
  const hierarchy::DecompositionTree big_tree(big_inst.graph,
                                              *big_inst.finder);
  auto big_snapshot =
      std::make_shared<const oracle::PathOracle>(big_tree, eps);
  const Workload big_w =
      make_workload("uniform", big_queries / 2, 0.0, big_queries,
                    big_snapshot->num_vertices(), 11);

  double big_serial_s = 0;
  obs::LatencyHistogram big_serial_lat;
  const double big_serial_qps =
      run_serial(*big_snapshot, big_w, &big_serial_s, &big_serial_lat);
  const std::uint64_t expected_digest = serial_digest(*big_snapshot, big_w);

  util::TableWriter sharded_table(
      {"mode", "shards", "qps", "speedup", "p99_us", "win_p99_us", "digest",
       "sum_ok"});
  sharded_table.add_row(
      {"serial", "1", util::strf("%.0f", big_serial_qps), "1.00x",
       util::strf("%.1f", big_serial_lat.percentile_nanos(0.99) / 1000.0),
       "-", hex64(expected_digest), "-"});

  std::vector<ShardedRow> sharded_rows;
  double peak_qps = big_serial_qps;
  bool digests_ok = true;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const ShardedRow row =
        run_sharded(big_snapshot, big_w, batch, shards, big_serial_qps);
    sharded_rows.push_back(row);
    peak_qps = std::max(peak_qps, row.qps);
    const bool digest_ok = row.digest == expected_digest;
    digests_ok = digests_ok && digest_ok && row.answers_sum_ok;
    sharded_table.add_row(
        {"sharded", util::strf("%zu", row.shards),
         util::strf("%.0f", row.qps), util::strf("%.2fx", row.speedup),
         util::strf("%.1f", row.p99_us),
         util::strf("%.1f", row.window.p99_nanos / 1e3),
         hex64(row.digest) + (digest_ok ? "" : " MISMATCH"),
         row.answers_sum_ok ? "yes" : "NO"});
  }

  // Tracing-on sharded row: tail sampling must attach a nonzero exemplar
  // span id to at least one admitted slow-log entry.
  obs::set_trace_enabled(true);
  std::size_t slowlog_span_entries = 0;
  std::size_t slowlog_entries = 0;
  double tracing_sharded_qps = 0;
  {
    service::ShardedEngineOptions opts;
    opts.shards = threads;
    opts.cache_capacity = 0;
    opts.slowlog_capacity = 32;
    service::ShardedEngine engine(big_snapshot, opts);
    std::vector<Weight> results(batch);
    util::Timer timer;
    for (std::size_t begin = 0; begin < big_w.queries.size();
         begin += batch) {
      const std::size_t size =
          std::min(batch, big_w.queries.size() - begin);
      engine.query_batch_into(
          std::span<const service::Query>(big_w.queries)
              .subspan(begin, size),
          results.data());
    }
    tracing_sharded_qps =
        static_cast<double>(big_w.queries.size()) / timer.elapsed_seconds();
    for (const obs::SlowQuery& slow : engine.slowlog().snapshot()) {
      ++slowlog_entries;
      if (slow.span_id != 0) ++slowlog_span_entries;
    }
    slowlog_json = obs::slowlog_to_json(engine.slowlog().snapshot());
  }
  obs::set_trace_enabled(false);
  const std::size_t tracing_spans = obs::drain_spans().size();
  sharded_table.add_row({"sharded-tracing", util::strf("%zu", threads),
                         util::strf("%.0f", tracing_sharded_qps),
                         util::strf("%.2fx",
                                    tracing_sharded_qps / big_serial_qps),
                         "-", "-", "-",
                         slowlog_span_entries > 0 ? "yes" : "NO"});
  sharded_table.print(std::cout);
  std::printf("tracing row: %zu slowlog entries, %zu with a nonzero exemplar "
              "span id, %zu spans committed\n",
              slowlog_entries, slowlog_span_entries, tracing_spans);
#if !defined(PATHSEP_OBS_DISABLED)
  if (slowlog_span_entries == 0) {
    std::fprintf(stderr, "FAIL: no slow-log entry carries a tail-sampled "
                         "span id with tracing on\n");
    exit_code = 2;
  }
#endif
  if (!digests_ok) {
    std::fprintf(stderr, "FAIL: sharded answer digests or answers_total sums "
                         "diverged from serial\n");
    exit_code = 2;
  }
  if (!sharded_rows.empty() && sharded_rows.front().speedup < 1.0)
    std::printf("WARNING: sharded(1) below serial (%.3fx)\n",
                sharded_rows.front().speedup);

  // ---- E14d: open-loop arrival — p50/p99 from scheduled arrival time at
  // fractions of the measured closed-loop peak.
  section("E14d", "open-loop arrival (latency from scheduled arrival)");
  std::vector<OpenLoopRow> open_loop_rows;
  {
    service::ShardedEngineOptions opts;
    opts.shards = threads;
    opts.cache_capacity = 0;
    service::ShardedEngine engine(big_snapshot, opts);
    util::TableWriter ol_table({"offered_qps", "of_peak", "achieved_qps",
                                "p50_us", "p99_us"});
    const std::vector<double> fractions =
        quick ? std::vector<double>{0.7} : std::vector<double>{0.5, 0.7, 0.9};
    for (const double fraction : fractions) {
      const OpenLoopRow row =
          run_open_loop(engine, big_w, 256, fraction * peak_qps);
      open_loop_rows.push_back(row);
      ol_table.add_row({util::strf("%.0f", row.offered_qps),
                        util::strf("%.0f%%", 100.0 * fraction),
                        util::strf("%.0f", row.achieved_qps),
                        util::strf("%.1f", row.p50_us),
                        util::strf("%.1f", row.p99_us)});
    }
    ol_table.print(std::cout);
    std::printf("batch 256, in-flight cap 128 batches, peak %.0f qps\n",
                peak_qps);
  }

  // ---- E14e: the network path — in-process epoll server on localhost,
  // driven by the same loadgen loop as --loadgen --connect.
  section("E14e", "network path (binary protocol over localhost)");
  NetRow net_row;
  bool net_ok = true;
#if defined(__linux__)
  {
    service::ShardedEngineOptions opts;
    opts.shards = threads;
    opts.cache_capacity = 0;
    service::ShardedEngine engine(big_snapshot, opts);
    service::NetServer server(engine);
    server.start();
    net_row = run_net_loadgen("127.0.0.1", server.port(), big_w, 512);
    const service::NetServer::Stats stats = server.stats();
    server.stop();
    net_ok = net_row.digest == expected_digest;
    std::printf("wire: %.0f qps, frame p50 %.1f us, p99 %.1f us over %llu "
                "frames (%.1f MiB in, %.1f MiB out), digest %s%s\n",
                net_row.qps, net_row.p50_us, net_row.p99_us,
                static_cast<unsigned long long>(net_row.frames),
                static_cast<double>(stats.bytes_in) / (1024.0 * 1024.0),
                static_cast<double>(stats.bytes_out) / (1024.0 * 1024.0),
                hex64(net_row.digest).c_str(),
                net_ok ? " (matches serial)" : " MISMATCH");
    if (!net_ok) {
      std::fprintf(stderr,
                   "FAIL: network-path digest diverged from serial\n");
      exit_code = 2;
    }
  }
#else
  std::printf("skipped (epoll front-end is Linux-only)\n");
#endif

  // ---- JSON record for the repo (EXPERIMENTS.md points here).
  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_service\",\n"
       << "  \"grid_side\": " << side << ", \"epsilon\": " << eps
       << ", \"num_queries\": " << num_queries
       << ", \"distinct_pairs\": " << distinct_pairs
       << ", \"batch\": " << batch << ", \"threads\": " << threads << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"workload\": \""
         << r.workload << "\", \"threads\": " << r.threads
         << ", \"qps\": " << util::strf("%.0f", r.qps)
         << ", \"speedup\": " << util::strf("%.3f", r.speedup)
         << ", \"p99_us\": " << util::strf("%.2f", r.p99_us);
    if (r.has_window)
      json << ", \"win_qps\": " << util::strf("%.0f", r.window.qps)
           << ", \"win_p50_us\": "
           << util::strf("%.2f", r.window.p50_nanos / 1e3)
           << ", \"win_p99_us\": "
           << util::strf("%.2f", r.window.p99_nanos / 1e3);
    json << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"sharded\": {\"grid_side\": " << big_side
       << ", \"num_vertices\": " << big_side * big_side
       << ", \"num_queries\": " << big_queries
       << ", \"serial_qps\": " << util::strf("%.0f", big_serial_qps)
       << ", \"digest\": \"" << hex64(expected_digest)
       << "\", \"digests_ok\": " << (digests_ok ? "true" : "false")
       << ",\n    \"runs\": [\n";
  for (std::size_t i = 0; i < sharded_rows.size(); ++i) {
    const ShardedRow& r = sharded_rows[i];
    json << "      {\"shards\": " << r.shards
         << ", \"qps\": " << util::strf("%.0f", r.qps)
         << ", \"speedup\": " << util::strf("%.3f", r.speedup)
         << ", \"p99_us\": " << util::strf("%.2f", r.p99_us)
         << ", \"win_qps\": " << util::strf("%.0f", r.window.qps)
         << ", \"win_p99_us\": "
         << util::strf("%.2f", r.window.p99_nanos / 1e3)
         << ", \"digest\": \"" << hex64(r.digest)
         << "\", \"answers_sum_ok\": "
         << (r.answers_sum_ok ? "true" : "false") << "}"
         << (i + 1 < sharded_rows.size() ? "," : "") << "\n";
  }
  json << "    ]\n  },\n"
       << "  \"tracing_row\": {\"qps\": "
       << util::strf("%.0f", tracing_sharded_qps)
       << ", \"slowlog_entries\": " << slowlog_entries
       << ", \"slowlog_span_entries\": " << slowlog_span_entries
       << ", \"spans_recorded\": " << tracing_spans << "},\n"
       << "  \"open_loop\": [\n";
  for (std::size_t i = 0; i < open_loop_rows.size(); ++i) {
    const OpenLoopRow& r = open_loop_rows[i];
    json << "    {\"offered_qps\": " << util::strf("%.0f", r.offered_qps)
         << ", \"achieved_qps\": " << util::strf("%.0f", r.achieved_qps)
         << ", \"p50_us\": " << util::strf("%.2f", r.p50_us)
         << ", \"p99_us\": " << util::strf("%.2f", r.p99_us) << "}"
         << (i + 1 < open_loop_rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"network\": {\"qps\": " << util::strf("%.0f", net_row.qps)
       << ", \"p50_us\": " << util::strf("%.2f", net_row.p50_us)
       << ", \"p99_us\": " << util::strf("%.2f", net_row.p99_us)
       << ", \"frames\": " << net_row.frames << ", \"digest_ok\": "
       << (net_ok ? "true" : "false") << "},\n"
       << "  \"windowed\": " << windowed_json << ",\n"
       << "  \"slowlog\": " << slowlog_json << ",\n"
       << "  \"answers_level_sum\": {\"answers_total\": " << answers_sum
       << ", \"queries_total\": " << answers_queries << ", \"equal\": "
       << (answers_sum == answers_queries ? "true" : "false") << "},\n"
       << "  \"instrumentation_overhead\": {\n"
       << "    \"raw_qps\": " << util::strf("%.0f", raw_qps)
       << ", \"instrumented_qps\": " << util::strf("%.0f", instr_qps)
       << ", \"tracing_qps\": " << util::strf("%.0f", tracing_qps) << ",\n"
       << "    \"overhead_disabled_pct\": "
       << util::strf("%.2f", overhead_disabled_pct)
       << ", \"overhead_tracing_pct\": "
       << util::strf("%.2f", overhead_tracing_pct)
       << ", \"per_query_timing_pct\": "
       << util::strf("%.2f", per_query_timing_pct)
       << ", \"spans_recorded\": " << spans_recorded << "\n  },\n"
       << "  \"engine_metrics\": " << engine_metrics_json << "\n}\n";
  std::ofstream out(out_path);
  out << json.str();
  std::printf("\nwrote %s\n", out_path.c_str());
  return exit_code;
}
