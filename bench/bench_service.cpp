// E14 — query service throughput: serial dispatch vs. the pooled batched
// engine vs. the pooled engine with its sharded LRU result cache.
//
// Workload: a planar grid oracle (the paper's canonical 1-path-separable
// family) serving a fixed number of (u, v) queries, drawn either uniformly
// or Zipf-skewed from a fixed pool of distinct pairs — the repeat-heavy
// popularity distribution an object-location service sees. Serial answers
// on one thread straight from PathOracle::query; pooled fans batches out to
// the persistent worker pool; cached adds the result cache on top (warmed
// by one pass). Speedups are relative to serial QPS on the same workload.
//
// Also measures the observability layer's hot-path cost: the same serial
// query loop re-run with per-query histogram recording plus a per-batch
// span, once with tracing disabled (the production default — the span is
// one relaxed atomic load) and once with tracing enabled. Overheads and the
// engine's metrics snapshot are written to --out (default
// BENCH_service.json) for the repo record.
#include "common.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "service/query_engine.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"

namespace pathsep::bench {
namespace {

struct Workload {
  std::string name;
  std::vector<service::Query> queries;  ///< the sequence actually served
};

Workload make_workload(const std::string& name, std::size_t distinct_pairs,
                       double zipf_s, std::size_t num_queries, std::size_t n,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<service::Query> pool;
  pool.reserve(distinct_pairs);
  for (std::size_t i = 0; i < distinct_pairs; ++i)
    pool.push_back({static_cast<Vertex>(rng.next_below(n)),
                    static_cast<Vertex>(rng.next_below(n))});
  const util::ZipfSampler zipf(distinct_pairs, zipf_s);
  Workload w{name, {}};
  w.queries.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i)
    w.queries.push_back(pool[zipf.sample(rng)]);
  return w;
}

/// With `lat` null this is the raw loop (the overhead section's baseline);
/// with a histogram it times every query, so the serial row reports a real
/// p99 instead of 0.00 — the same per-query timer the engine rows pay.
double run_serial(const oracle::PathOracle& oracle, const Workload& w,
                  double* seconds, obs::LatencyHistogram* lat = nullptr) {
  util::Timer timer;
  Weight sink = 0;
  if (lat) {
    for (const service::Query& q : w.queries) {
      const util::Timer query_timer;
      sink += oracle.query(q.u, q.v);
      lat->record(query_timer.elapsed_ns());
    }
  } else {
    for (const service::Query& q : w.queries) sink += oracle.query(q.u, q.v);
  }
  util::do_not_optimize(sink);
  *seconds = timer.elapsed_seconds();
  return static_cast<double>(w.queries.size()) / *seconds;
}

double run_engine(service::QueryEngine& engine, const Workload& w,
                  std::size_t batch, double* seconds) {
  util::Timer timer;
  for (std::size_t begin = 0; begin < w.queries.size(); begin += batch) {
    const std::size_t end = std::min(begin + batch, w.queries.size());
    const auto results = engine.query_batch(
        std::span<const service::Query>(w.queries).subspan(begin, end - begin));
    util::do_not_optimize(results);
  }
  *seconds = timer.elapsed_seconds();
  return static_cast<double>(w.queries.size()) / *seconds;
}

/// The serial loop of run_serial plus the obs-layer work the engine adds to
/// the query hot path: the cost-tracking query (query_stats instead of
/// query), three counter increments (total, miss, per-level answer), the
/// slow-log admission-floor load, and one trace span per batch — exactly
/// answer_one's untimed recording. With time_each_query the clock-read
/// flavor is added too: the per-query latency record, the windowed-histogram
/// record (it reuses the same t1 reading), and slow-log admission for tail
/// queries. That cost is clock reads, not obs recording, and the bench
/// reports it as a separate number.
double run_serial_instrumented(const oracle::PathOracle& oracle,
                               const Workload& w, std::size_t batch,
                               obs::MetricsRegistry& registry,
                               bool time_each_query) {
  obs::Counter& total = registry.counter("queries_total");
  obs::Counter& misses = registry.counter("cache_misses");
  obs::LatencyHistogram& lat = registry.histogram("query_latency_ns");
  const std::size_t levels = std::max<std::size_t>(1, oracle.num_levels());
  std::vector<obs::Counter*> answers;
  answers.reserve(levels);
  for (std::size_t level = 0; level < levels; ++level)
    answers.push_back(
        &registry.counter("answers_total", {{"level", std::to_string(level)}}));
  obs::Counter& unreachable =
      registry.counter("answers_total", {{"level", "unreachable"}});
  obs::Counter& self = registry.counter("answers_total", {{"level", "self"}});
  obs::WindowedHistogram window;
  obs::SlowLog slowlog;
  std::uint64_t floor_sink = 0;  // keeps the untimed floor load observable
  util::Timer timer;
  Weight sink = 0;
  for (std::size_t begin = 0; begin < w.queries.size(); begin += batch) {
    PATHSEP_SPAN("bench.batch");
    const std::size_t end = std::min(begin + batch, w.queries.size());
    for (std::size_t i = begin; i < end; ++i) {
      const service::Query& q = w.queries[i];
      oracle::QueryStats stats;
      std::uint64_t t0 = 0;
      if (time_each_query) t0 = obs::window_now_ns();
      const Weight d = oracle.query_stats(q.u, q.v, stats);
      sink += d;
      total.inc();
      misses.inc();
      if (q.u == q.v) {
        self.inc();
      } else if (d == graph::kInfiniteWeight) {
        unreachable.inc();
      } else {
        answers[std::min(
                    levels - 1,
                    static_cast<std::size_t>(
                        std::max<std::int32_t>(0, stats.win_level)))]
            ->inc();
      }
      if (time_each_query) {
        const std::uint64_t t1 = obs::window_now_ns();
        const std::uint64_t elapsed = t1 - t0;
        lat.record(elapsed);
        window.record(elapsed, t1);
        if (elapsed >= slowlog.admission_floor()) {
          obs::SlowQuery slow;
          slow.u = q.u;
          slow.v = q.v;
          slow.latency_ns = elapsed;
          slow.when_ns = t1;
          slow.entries_scanned = stats.entries_scanned;
          slow.win_node = stats.win_node;
          slow.win_level = stats.win_level;
          slowlog.record(slow);
        }
      } else {
        floor_sink += slowlog.admission_floor();
      }
    }
  }
  util::do_not_optimize(sink);
  util::do_not_optimize(floor_sink);
  return static_cast<double>(w.queries.size()) / timer.elapsed_seconds();
}

struct RunRecord {
  std::string mode, workload;
  std::size_t threads = 1;
  double qps = 0, speedup = 1.0, p99_us = 0;
  bool has_window = false;  ///< engine modes carry a windowed-tail view
  obs::WindowedHistogram::View window{};
};

}  // namespace
}  // namespace pathsep::bench

int main(int argc, char** argv) {
  using namespace pathsep;
  using namespace pathsep::bench;

  util::Args args(argc, argv);
  const std::string out_path = args.get("out", "BENCH_service.json");
  const std::size_t side = 40;          // 1600-vertex planar grid
  const double eps = 0.25;
  const std::size_t num_queries = 400000;
  const std::size_t distinct_pairs = 200000;
  const std::size_t batch = 1024;
  const std::size_t threads = util::default_threads();

  section("E14", "query service throughput (serial vs pooled vs cached)");
  std::printf("grid %zux%zu, eps=%.2f, %zu queries, %zu distinct pairs, "
              "batch %zu, %zu worker threads (PATHSEP_THREADS overrides)\n",
              side, side, eps, num_queries, distinct_pairs, batch, threads);

  Instance inst = make_grid(side);
  const hierarchy::DecompositionTree tree(inst.graph, *inst.finder);
  auto snapshot =
      std::make_shared<const oracle::PathOracle>(tree, eps);
  const std::size_t n = snapshot->num_vertices();

  const Workload uniform =
      make_workload("uniform", distinct_pairs, 0.0, num_queries, n, 7);
  const Workload zipf =
      make_workload("zipf-1.1", distinct_pairs, 1.1, num_queries, n, 7);

  util::TableWriter table({"mode", "workload", "threads", "cache", "qps",
                           "speedup", "hit_rate", "p99_us"});
  std::vector<RunRecord> records;
  std::string engine_metrics_json = "{}";
  std::string windowed_json = "{}";
  std::string slowlog_json = "[]";
  std::uint64_t answers_sum = 0, answers_queries = 0;

  for (const Workload* w : {&uniform, &zipf}) {
    double serial_s = 0;
    obs::LatencyHistogram serial_lat;
    const double serial_qps = run_serial(*snapshot, *w, &serial_s, &serial_lat);
    const double serial_p99_us = serial_lat.percentile_nanos(0.99) / 1000.0;
    table.add_row({"serial", w->name, "1", "off",
                   util::strf("%.0f", serial_qps), "1.00x", "-",
                   util::strf("%.1f", serial_p99_us)});
    records.push_back({"serial", w->name, 1, serial_qps, 1.0, serial_p99_us});

    service::QueryEngineOptions pooled_opts;
    pooled_opts.threads = threads;
    pooled_opts.cache_capacity = 0;
    service::QueryEngine pooled(snapshot, pooled_opts);
    double pooled_s = 0;
    const double pooled_qps = run_engine(pooled, *w, batch, &pooled_s);
    const double pooled_p99_us =
        pooled.metrics().histogram("query_latency_ns").percentile_nanos(0.99) /
        1000.0;
    table.add_row({"pooled", w->name, util::strf("%zu", threads), "off",
                   util::strf("%.0f", pooled_qps),
                   util::strf("%.2fx", pooled_qps / serial_qps), "-",
                   util::strf("%.1f", pooled_p99_us)});
    records.push_back({"pooled", w->name, threads, pooled_qps,
                       pooled_qps / serial_qps, pooled_p99_us, true,
                       pooled.window().view(obs::window_now_ns())});
    engine_metrics_json = obs::metrics_to_json(pooled.metrics().snapshot());
    windowed_json = obs::window_to_json(records.back().window);
    slowlog_json = obs::slowlog_to_json(pooled.slowlog().snapshot());
    // Attribution invariant the exporter tests pin down: the answers_total
    // family (levels + cached/self/unreachable) sums to queries_total.
    answers_sum = 0;
    answers_queries = 0;
    for (const obs::MetricSample& s : pooled.metrics().snapshot()) {
      if (s.kind != obs::MetricKind::kCounter) continue;
      if (s.name == "answers_total") answers_sum += s.counter_value;
      if (s.name == "queries_total") answers_queries = s.counter_value;
    }

    service::QueryEngineOptions cached_opts;
    cached_opts.threads = threads;
    cached_opts.cache_capacity = 1 << 16;
    service::QueryEngine cached(snapshot, cached_opts);
    double warm_s = 0;
    run_engine(cached, *w, batch, &warm_s);  // warm the LRU
    const std::uint64_t warm_hits = cached.cache().hits();
    const std::uint64_t warm_misses = cached.cache().misses();
    double cached_s = 0;
    const double cached_qps = run_engine(cached, *w, batch, &cached_s);
    const double warm_rate =
        static_cast<double>(cached.cache().hits() - warm_hits) /
        static_cast<double>((cached.cache().hits() - warm_hits) +
                            (cached.cache().misses() - warm_misses));
    const double cached_p99_us =
        cached.metrics().histogram("query_latency_ns").percentile_nanos(0.99) /
        1000.0;
    table.add_row({"cached", w->name, util::strf("%zu", threads), "65536",
                   util::strf("%.0f", cached_qps),
                   util::strf("%.2fx", cached_qps / serial_qps),
                   util::strf("%.1f%%", 100.0 * warm_rate),
                   util::strf("%.1f", cached_p99_us)});
    records.push_back({"cached", w->name, threads, cached_qps,
                       cached_qps / serial_qps, cached_p99_us, true,
                       cached.window().view(obs::window_now_ns())});
  }

  table.print(std::cout);
  std::printf(
      "\nnotes: pooled speedup scales with hardware threads (this run: %zu); "
      "cached hit-rate column is measured after a full warming pass.\n",
      threads);

  // ---- Instrumentation overhead: raw serial loop vs. the same loop with
  // per-query obs recording, tracing off then on. Best of 3 reps each to
  // keep the percentages from reflecting scheduler noise.
  section("E14b", "observability hot-path overhead (serial query loop)");
  const int reps = 3;
  double raw_qps = 0, instr_qps = 0, tracing_qps = 0, timed_qps = 0;
  obs::set_trace_enabled(false);
  for (int r = 0; r < reps; ++r) {
    double s = 0;
    raw_qps = std::max(raw_qps, run_serial(*snapshot, uniform, &s));
  }
  for (int r = 0; r < reps; ++r) {
    obs::MetricsRegistry registry;
    instr_qps = std::max(instr_qps,
                         run_serial_instrumented(*snapshot, uniform, batch,
                                                 registry, false));
  }
  obs::set_trace_enabled(true);
  for (int r = 0; r < reps; ++r) {
    obs::MetricsRegistry registry;
    tracing_qps = std::max(tracing_qps,
                           run_serial_instrumented(*snapshot, uniform, batch,
                                                   registry, false));
  }
  obs::set_trace_enabled(false);
  const std::size_t spans_recorded = obs::drain_spans().size();
  for (int r = 0; r < reps; ++r) {
    obs::MetricsRegistry registry;
    timed_qps = std::max(timed_qps,
                         run_serial_instrumented(*snapshot, uniform, batch,
                                                 registry, true));
  }
  const double overhead_disabled_pct = 100.0 * (1.0 - instr_qps / raw_qps);
  const double overhead_tracing_pct = 100.0 * (1.0 - tracing_qps / raw_qps);
  const double per_query_timing_pct = 100.0 * (1.0 - timed_qps / raw_qps);
  std::printf(
      "raw %.0f qps; obs recording (tracing off) %.0f qps (%+.2f%%); "
      "tracing on %.0f qps (%+.2f%%), %zu spans; with the service's "
      "per-query latency timer %.0f qps (%+.2f%%)\n",
      raw_qps, instr_qps, overhead_disabled_pct, tracing_qps,
      overhead_tracing_pct, spans_recorded, timed_qps, per_query_timing_pct);

  // ---- JSON record for the repo (EXPERIMENTS.md points here).
  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_service\",\n"
       << "  \"grid_side\": " << side << ", \"epsilon\": " << eps
       << ", \"num_queries\": " << num_queries
       << ", \"distinct_pairs\": " << distinct_pairs
       << ", \"batch\": " << batch << ", \"threads\": " << threads << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"workload\": \""
         << r.workload << "\", \"threads\": " << r.threads
         << ", \"qps\": " << util::strf("%.0f", r.qps)
         << ", \"speedup\": " << util::strf("%.3f", r.speedup)
         << ", \"p99_us\": " << util::strf("%.2f", r.p99_us);
    if (r.has_window)
      json << ", \"win_qps\": " << util::strf("%.0f", r.window.qps)
           << ", \"win_p50_us\": "
           << util::strf("%.2f", r.window.p50_nanos / 1e3)
           << ", \"win_p99_us\": "
           << util::strf("%.2f", r.window.p99_nanos / 1e3);
    json << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"windowed\": " << windowed_json << ",\n"
       << "  \"slowlog\": " << slowlog_json << ",\n"
       << "  \"answers_level_sum\": {\"answers_total\": " << answers_sum
       << ", \"queries_total\": " << answers_queries << ", \"equal\": "
       << (answers_sum == answers_queries ? "true" : "false") << "},\n"
       << "  \"instrumentation_overhead\": {\n"
       << "    \"raw_qps\": " << util::strf("%.0f", raw_qps)
       << ", \"instrumented_qps\": " << util::strf("%.0f", instr_qps)
       << ", \"tracing_qps\": " << util::strf("%.0f", tracing_qps) << ",\n"
       << "    \"overhead_disabled_pct\": "
       << util::strf("%.2f", overhead_disabled_pct)
       << ", \"overhead_tracing_pct\": "
       << util::strf("%.2f", overhead_tracing_pct)
       << ", \"per_query_timing_pct\": "
       << util::strf("%.2f", per_query_timing_pct)
       << ", \"spans_recorded\": " << spans_recorded << "\n  },\n"
       << "  \"engine_metrics\": " << engine_metrics_json << "\n}\n";
  std::ofstream out(out_path);
  out << json.str();
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
