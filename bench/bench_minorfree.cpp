// E12 — the Theorem 1 pipeline on almost-embeddable graphs (Steps 1–3).
//
// Synthetic genus-0 instances: planar grid + one boundary vortex of width p
// + a apices (the h-almost-embeddable shape of Theorem 4 with no genus).
// The staged separator removes apices, then <= 3 shortest paths of the
// embedded part plus the touched vortex bags. The paper bounds the total
// path count by a function of h alone — the measured k must stay flat as n
// grows and scale with the vortex width/apices, never with n.
#include "common.hpp"

#include "minorfree/apex_separator.hpp"
#include "minorfree/vortex_path.hpp"
#include "oracle/path_oracle.hpp"
#include "sssp/dijkstra.hpp"

using namespace pathsep;
using namespace pathsep::bench;

int main() {
  section("E12", "staged separator on almost-embeddable graphs (Thm 1 pipeline)");
  {
    util::TableWriter table({"grid", "width p", "apices a", "n", "h",
                             "k_measured", "valid", "largest_comp", "n/2"});
    struct Case {
      std::size_t side, width, apices;
    };
    for (const Case c :
         {Case{8, 1, 0}, Case{16, 1, 0}, Case{32, 1, 0}, Case{64, 1, 0},
          Case{16, 2, 2}, Case{32, 2, 2}, Case{64, 2, 2}, Case{32, 4, 4},
          Case{32, 8, 8}}) {
      util::Rng rng(300 + c.side + c.width);
      const minorfree::AlmostEmbedding ae = minorfree::random_almost_embeddable(
          c.side, c.side, c.width, c.apices, 4, rng);
      const separator::PathSeparator s =
          minorfree::almost_embeddable_separator(ae);
      const separator::ValidationReport report =
          separator::validate(ae.graph, s);
      table.add_row({util::strf("%zux%zu", c.side, c.side),
                     util::strf("%zu", c.width), util::strf("%zu", c.apices),
                     util::strf("%zu", ae.graph.num_vertices()),
                     util::strf("%zu", ae.h()),
                     util::strf("%zu", report.path_count),
                     report.ok ? "yes" : ("NO: " + report.error),
                     util::strf("%zu", report.largest_component),
                     util::strf("%zu", ae.graph.num_vertices() / 2)});
    }
    // Two-vortex instances (grid with a hole): both faces carry a vortex.
    for (const std::size_t side : {12u, 24u, 48u}) {
      util::Rng rng(350 + side);
      const minorfree::AlmostEmbedding ae =
          minorfree::random_two_vortex_instance(side, side, 2, 2, 4, rng);
      const separator::PathSeparator s =
          minorfree::almost_embeddable_separator(ae);
      const separator::ValidationReport report =
          separator::validate(ae.graph, s);
      table.add_row({util::strf("%zux%zu hole", side, side), "2 (x2)", "2",
                     util::strf("%zu", ae.graph.num_vertices()),
                     util::strf("%zu", ae.h()),
                     util::strf("%zu", report.path_count),
                     report.ok ? "yes" : ("NO: " + report.error),
                     util::strf("%zu", report.largest_component),
                     util::strf("%zu", ae.graph.num_vertices() / 2)});
    }
    table.print(std::cout);
    std::printf(
        "\npaper: k = O(h g (h+g)) depends only on the excluded minor, never\n"
        "on n — k_measured must stay flat down each fixed-(p,a) column.\n");
  }

  section("E12b", "vortex-paths of shortest paths (Definition 2 shapes)");
  {
    util::TableWriter table({"grid", "width p", "paths", "avg_segments",
                             "max_crossings", "all_valid"});
    for (std::size_t side : {16u, 32u, 64u}) {
      util::Rng rng(400 + side);
      const minorfree::AlmostEmbedding ae =
          minorfree::random_almost_embeddable(side, side, 2, 0, 4, rng);
      util::OnlineStats segments;
      std::size_t max_crossings = 0, count = 0;
      bool all_valid = true;
      for (int trial = 0; trial < 40; ++trial) {
        const auto s = static_cast<graph::Vertex>(
            rng.next_below(ae.graph.num_vertices()));
        const auto t = static_cast<graph::Vertex>(
            rng.next_below(ae.graph.num_vertices()));
        if (!ae.embedded[s] || !ae.embedded[t] || s == t) continue;
        const sssp::ShortestPaths sp = sssp::dijkstra(ae.graph, s);
        const std::vector<graph::Vertex> path = sssp::extract_path(sp, t);
        const minorfree::VortexPath vp = minorfree::vortex_path_of(ae, path);
        std::string err;
        all_valid = all_valid && vp.validate(ae, &err);
        segments.add(static_cast<double>(vp.segments.size()));
        max_crossings = std::max(max_crossings, vp.crossings.size());
        ++count;
      }
      table.add_row({util::strf("%zux%zu", side, side), "2",
                     util::strf("%zu", count),
                     util::strf("%.2f", segments.mean()),
                     util::strf("%zu", max_crossings),
                     all_valid ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::printf(
        "\nDefinition 2: a vortex-path enters pairwise distinct vortices, so\n"
        "with one vortex max_crossings <= 1 and segments <= 2.\n");
  }

  section("E12c", "(1+eps) oracle over almost-embeddable graphs (Thm 2 general)");
  {
    util::TableWriter table({"grid", "p", "a", "n", "tree_k", "depth",
                             "oracle_words", "stretch_avg", "stretch_max"});
    struct Case {
      std::size_t side, width, apices;
    };
    for (const Case c : {Case{12, 2, 2}, Case{20, 2, 2}, Case{32, 2, 2},
                         Case{20, 4, 4}}) {
      util::Rng rng(500 + c.side);
      const minorfree::AlmostEmbedding ae = minorfree::random_almost_embeddable(
          c.side, c.side, c.width, c.apices, 4, rng);
      const minorfree::AlmostEmbeddableSeparator finder(ae);
      const hierarchy::DecompositionTree tree(ae.graph, finder);
      const double eps = 0.25;
      const oracle::PathOracle oracle(tree, eps);
      const std::size_t n = ae.graph.num_vertices();
      util::OnlineStats stretch;
      util::Rng qrng(1);
      for (int i = 0; i < 200; ++i) {
        const auto u = static_cast<graph::Vertex>(qrng.next_below(n));
        auto v = static_cast<graph::Vertex>(qrng.next_below(n));
        while (v == u) v = static_cast<graph::Vertex>(qrng.next_below(n));
        const graph::Weight truth = sssp::distance(ae.graph, u, v);
        if (truth > 0) stretch.add(oracle.query(u, v) / truth);
      }
      table.add_row({util::strf("%zux%zu", c.side, c.side),
                     util::strf("%zu", c.width), util::strf("%zu", c.apices),
                     util::strf("%zu", n),
                     util::strf("%zu", tree.max_separator_paths()),
                     util::strf("%u", tree.height()),
                     util::strf("%zu", oracle.size_in_words()),
                     util::strf("%.4f", stretch.mean()),
                     util::strf("%.4f", stretch.max())});
    }
    table.print(std::cout);
    std::printf(
        "\nTheorem 2 holds for every k-path separable graph, not just planar\n"
        "ones: stretch_max must stay within 1+eps = 1.25 here too.\n");
  }
  return 0;
}
