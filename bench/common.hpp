// Shared workload construction for the experiment harnesses. Every bench
// binary prints the rows recorded in EXPERIMENTS.md through util::TableWriter
// so bench_output.txt and the write-up share one format.
#pragma once

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "hierarchy/decomposition_tree.hpp"
#include "separator/finders.hpp"
#include "separator/validate.hpp"
#include "sssp/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pathsep::bench {

using graph::Graph;
using graph::Vertex;
using graph::Weight;

/// A generated instance plus the separator strategy appropriate for it.
struct Instance {
  std::string family;
  Graph graph;
  std::unique_ptr<separator::SeparatorFinder> finder;
};

inline Instance make_grid(std::size_t side) {
  auto gg = graph::grid(side, side);
  return {"grid", std::move(gg.graph),
          std::make_unique<separator::GridLineSeparator>(side, side)};
}

inline Instance make_triangulation(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  auto gg = graph::random_apollonian(n, rng, graph::WeightSpec::euclidean());
  return {"planar-tri", std::move(gg.graph),
          std::make_unique<separator::PlanarCycleSeparator>(gg.positions)};
}

inline Instance make_road(std::size_t side, std::uint64_t seed) {
  util::Rng rng(seed);
  auto gg = graph::road_network(side, side, rng);
  return {"road", std::move(gg.graph),
          std::make_unique<separator::PlanarCycleSeparator>(gg.positions)};
}

inline Instance make_tree(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  return {"tree",
          graph::random_tree(n, rng, graph::WeightSpec::uniform_real(1, 4)),
          std::make_unique<separator::TreeCentroidSeparator>()};
}

inline Instance make_ktree(std::size_t n, std::size_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  return {"ktree-" + std::to_string(k),
          graph::random_ktree(n, k, rng, graph::WeightSpec::uniform_real(1, 4)),
          std::make_unique<separator::TreewidthBagSeparator>()};
}

inline Instance make_series_parallel(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  return {"series-parallel", graph::random_series_parallel(n, rng),
          std::make_unique<separator::TreewidthBagSeparator>()};
}

inline Instance make_outerplanar(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  auto gg = graph::random_outerplanar(n, rng, 0.9);
  return {"outerplanar", std::move(gg.graph),
          std::make_unique<separator::PlanarCycleSeparator>(gg.positions)};
}

/// Prints a section header in a stable, grep-friendly format.
inline void section(const std::string& experiment, const std::string& title) {
  std::printf("\n=== %s: %s ===\n", experiment.c_str(), title.c_str());
}

}  // namespace pathsep::bench
